//! Tornado detection: azimuthal-shear / velocity-couplet detector in the
//! style of the NSSL tornado detection algorithm — the "detection
//! algorithm" whose sensitivity to averaging Table 1 measures.
//!
//! A Rankine vortex seen by a Doppler radar produces a *couplet*:
//! adjacent azimuths at the same range with strongly opposed radial
//! velocities. The detector scans gate-to-gate velocity differences
//! across azimuth, flags cells whose difference and shear exceed
//! thresholds, grows flagged cells into clusters, and reports clusters
//! strong enough to be tornado vortex signatures.

use crate::moments::MomentScan;
use std::time::Instant;

/// Detector thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Minimum velocity spread (max − min, m/s) across the azimuth window
    /// at constant range — the couplet signature.
    pub min_delta_v: f64,
    /// Minimum azimuthal shear Δv / window arc-length (1/s).
    pub min_shear: f64,
    /// Azimuth window width (rad) over which the couplet is sought;
    /// should span a vortex core at the ranges of interest.
    pub window_rad: f64,
    /// Minimum flagged cells in a cluster.
    pub min_cluster: usize,
    /// Reflectivity gate (dB): ignore clear-air cells.
    pub min_reflectivity: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_delta_v: 14.0,
            min_shear: 0.008,
            window_rad: 0.08,
            min_cluster: 3,
            min_reflectivity: 5.0,
        }
    }
}

/// One reported vortex signature.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Cluster centroid in Cartesian coordinates relative to the radar (m).
    pub position: [f64; 2],
    /// Peak azimuth-adjacent velocity difference (m/s).
    pub strength: f64,
    /// Number of flagged cells in the cluster.
    pub cluster_size: usize,
}

/// Detection output plus the measured runtime (Table 1 column 3).
#[derive(Debug, Clone)]
pub struct DetectionResult {
    pub detections: Vec<Detection>,
    pub runtime_secs: f64,
    /// Cells examined (work metric independent of wall clock).
    pub cells_examined: usize,
}

/// Run the detector over one moment scan. `radar_pos` translates polar
/// detections into scene coordinates.
pub fn detect_tornados(
    scan: &MomentScan,
    radar_pos: [f64; 2],
    cfg: &DetectorConfig,
) -> DetectionResult {
    let start = Instant::now();
    let n_radials = scan.radials.len();
    let mut flagged: Vec<(usize, usize, f64)> = Vec::new(); // (radial, gate, Δv)
    let mut cells_examined = 0usize;

    // For each radial, find the last radial within the azimuth window
    // (radials are in increasing azimuth order).
    for ri in 0..n_radials {
        let az0 = scan.radials[ri].azimuth;
        let mut rj = ri;
        while rj + 1 < n_radials && scan.radials[rj + 1].azimuth - az0 <= cfg.window_rad {
            rj += 1;
        }
        if rj == ri {
            continue; // window holds a single radial: no shear measurable
        }
        let n_gates = scan.radials[ri].cells.len();
        for g in 0..n_gates {
            cells_examined += 1;
            let mut v_min = f64::INFINITY;
            let mut v_max = f64::NEG_INFINITY;
            let mut refl_ok = true;
            for radial in &scan.radials[ri..=rj] {
                let cell = &radial.cells[g];
                if (cell.reflectivity as f64) < cfg.min_reflectivity {
                    refl_ok = false;
                    break;
                }
                v_min = v_min.min(cell.velocity as f64);
                v_max = v_max.max(cell.velocity as f64);
            }
            if !refl_ok {
                continue;
            }
            let dv = v_max - v_min;
            let range = scan.radials[ri].cells[g].range;
            let arc = range * cfg.window_rad;
            if arc <= 0.0 {
                continue;
            }
            let shear = dv / arc;
            if dv >= cfg.min_delta_v && shear >= cfg.min_shear {
                flagged.push((ri, g, dv));
            }
        }
    }

    // Cluster flagged cells by adjacency in (radial, gate) space.
    let mut clusters: Vec<Vec<(usize, usize, f64)>> = Vec::new();
    let mut used = vec![false; flagged.len()];
    for i in 0..flagged.len() {
        if used[i] {
            continue;
        }
        let mut cluster = vec![flagged[i]];
        used[i] = true;
        let mut frontier = vec![i];
        while let Some(j) = frontier.pop() {
            let (rj, gj, _) = flagged[j];
            for (k, &(rk, gk, dv)) in flagged.iter().enumerate() {
                if !used[k] && rj.abs_diff(rk) <= 2 && gj.abs_diff(gk) <= 3 {
                    used[k] = true;
                    cluster.push((rk, gk, dv));
                    frontier.push(k);
                }
            }
        }
        clusters.push(cluster);
    }

    let mut detections = Vec::new();
    for cluster in clusters {
        if cluster.len() < cfg.min_cluster {
            continue;
        }
        let strength = cluster.iter().map(|&(_, _, dv)| dv).fold(0.0, f64::max);
        // Centroid in polar, then to Cartesian.
        let mut az_acc = 0.0;
        let mut r_acc = 0.0;
        for &(ri, g, _) in &cluster {
            let cell = &scan.radials[ri].cells[g];
            az_acc += cell.azimuth;
            r_acc += cell.range;
        }
        let az = az_acc / cluster.len() as f64;
        let range = r_acc / cluster.len() as f64;
        detections.push(Detection {
            position: [
                radar_pos[0] + range * az.cos(),
                radar_pos[1] + range * az.sin(),
            ],
            strength,
            cluster_size: cluster.len(),
        });
    }
    // Strongest first.
    detections.sort_by(|a, b| b.strength.partial_cmp(&a.strength).unwrap());

    DetectionResult {
        detections,
        runtime_secs: start.elapsed().as_secs_f64(),
        cells_examined,
    }
}

/// Fuse detections from multiple radars observing overlapping regions
/// (the central node's merge step, §2.2): detections within `radius_m`
/// of each other are clustered; each cluster reports the centroid
/// (weighted by strength), the max strength, and how many radars agreed.
pub fn merge_detections(per_radar: &[Vec<Detection>], radius_m: f64) -> Vec<MergedDetection> {
    let mut all: Vec<(usize, &Detection)> = Vec::new();
    for (radar, dets) in per_radar.iter().enumerate() {
        for d in dets {
            all.push((radar, d));
        }
    }
    let mut used = vec![false; all.len()];
    let mut merged = Vec::new();
    for i in 0..all.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let mut members = vec![all[i]];
        let mut frontier = vec![i];
        while let Some(j) = frontier.pop() {
            for k in 0..all.len() {
                if used[k] {
                    continue;
                }
                let dx = all[j].1.position[0] - all[k].1.position[0];
                let dy = all[j].1.position[1] - all[k].1.position[1];
                if (dx * dx + dy * dy).sqrt() <= radius_m {
                    used[k] = true;
                    members.push(all[k]);
                    frontier.push(k);
                }
            }
        }
        let total_w: f64 = members.iter().map(|(_, d)| d.strength).sum();
        let cx = members
            .iter()
            .map(|(_, d)| d.strength * d.position[0])
            .sum::<f64>()
            / total_w;
        let cy = members
            .iter()
            .map(|(_, d)| d.strength * d.position[1])
            .sum::<f64>()
            / total_w;
        let mut radars: Vec<usize> = members.iter().map(|(r, _)| *r).collect();
        radars.sort_unstable();
        radars.dedup();
        merged.push(MergedDetection {
            position: [cx, cy],
            strength: members.iter().map(|(_, d)| d.strength).fold(0.0, f64::max),
            radar_count: radars.len(),
        });
    }
    merged.sort_by(|a, b| b.strength.partial_cmp(&a.strength).unwrap());
    merged
}

/// A detection fused across radars.
#[derive(Debug, Clone)]
pub struct MergedDetection {
    pub position: [f64; 2],
    pub strength: f64,
    /// Number of distinct radars contributing — multi-radar agreement is
    /// the confidence signal the CASA loop uses for re-steering.
    pub radar_count: usize,
}

/// False-negative accounting: ground-truth tornados with no detection
/// within `radius_m`.
pub fn false_negatives(
    detections: &[Detection],
    truth_positions: &[[f64; 2]],
    radius_m: f64,
) -> usize {
    truth_positions
        .iter()
        .filter(|t| {
            !detections.iter().any(|d| {
                let dx = d.position[0] - t[0];
                let dy = d.position[1] - t[1];
                (dx * dx + dy * dy).sqrt() <= radius_m
            })
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::compute_moments;
    use crate::radar::{RadarNode, RadarParams};
    use crate::weather::WeatherField;

    fn params() -> RadarParams {
        RadarParams {
            gates: 416,
            gate_spacing: 48.0,
            noise_sd: 0.15,
            phase_jitter: 0.15,
            ..Default::default()
        }
    }

    /// Scan the sector containing the default tornado (at bearing ≈ 36.9°,
    /// range 15 km from the origin).
    fn scan_tornado(n_avg: usize) -> DetectionResult {
        let field = WeatherField::tornadic_default();
        let node = RadarNode::new(0, [0.0, 0.0], params());
        let bearing = (9_000.0f64).atan2(12_000.0);
        let pulses = node.sector_scan(&field, bearing - 0.12, bearing + 0.12, 0.0, 31);
        let scan = compute_moments(&pulses, &params(), n_avg);
        detect_tornados(&scan, [0.0, 0.0], &DetectorConfig::default())
    }

    #[test]
    fn fine_averaging_detects_the_vortex() {
        let res = scan_tornado(40);
        assert!(
            !res.detections.is_empty(),
            "vortex missed at fine averaging"
        );
        let d = &res.detections[0];
        let dist = ((d.position[0] - 12_000.0).powi(2) + (d.position[1] - 9_000.0).powi(2)).sqrt();
        assert!(dist < 1_500.0, "detection {:.0} m from truth", dist);
        assert!(d.strength >= 14.0);
    }

    #[test]
    fn coarse_averaging_misses_the_vortex() {
        let res = scan_tornado(1000);
        assert!(
            res.detections.is_empty(),
            "couplet should smear away at N=1000, got {:?}",
            res.detections
        );
    }

    #[test]
    fn quiet_scene_produces_no_detections() {
        let field = WeatherField::quiet();
        let node = RadarNode::new(0, [0.0, 0.0], params());
        let bearing = (9_000.0f64).atan2(12_000.0);
        let pulses = node.sector_scan(&field, bearing - 0.1, bearing + 0.1, 0.0, 33);
        let scan = compute_moments(&pulses, &params(), 40);
        let res = detect_tornados(&scan, [0.0, 0.0], &DetectorConfig::default());
        assert!(
            res.detections.is_empty(),
            "false positives: {:?}",
            res.detections
        );
    }

    #[test]
    fn false_negative_accounting() {
        let det = vec![Detection {
            position: [1_000.0, 0.0],
            strength: 30.0,
            cluster_size: 5,
        }];
        let truth = vec![[1_200.0, 100.0], [9_000.0, 9_000.0]];
        assert_eq!(false_negatives(&det, &truth, 2_000.0), 1);
        assert_eq!(false_negatives(&[], &truth, 2_000.0), 2);
        assert_eq!(false_negatives(&det, &[], 2_000.0), 0);
    }

    #[test]
    fn merge_clusters_across_radars() {
        let d = |x: f64, y: f64, s: f64| Detection {
            position: [x, y],
            strength: s,
            cluster_size: 4,
        };
        let radar_a = vec![d(12_000.0, 9_000.0, 20.0), d(30_000.0, 5_000.0, 16.0)];
        let radar_b = vec![d(12_400.0, 8_800.0, 24.0)];
        let merged = merge_detections(&[radar_a, radar_b], 1_000.0);
        assert_eq!(merged.len(), 2);
        // Strongest cluster first: the two-radar vortex.
        assert_eq!(merged[0].radar_count, 2);
        assert_eq!(merged[0].strength, 24.0);
        let c = merged[0].position;
        assert!((c[0] - 12_218.0).abs() < 10.0, "strength-weighted centroid");
        assert_eq!(merged[1].radar_count, 1);
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        assert!(merge_detections(&[vec![], vec![]], 1_000.0).is_empty());
    }

    #[test]
    fn two_radars_confirm_the_same_vortex() {
        // End-to-end: both radars scan the default tornado from different
        // sites; the merged output must contain one two-radar cluster.
        let field = WeatherField::tornadic_default();
        let mut per_radar = Vec::new();
        for (id, pos) in [(0u32, [0.0, 0.0]), (1u32, [24_000.0, 0.0])] {
            let node = RadarNode::new(id, pos, params());
            let bearing = (9_000.0 - pos[1]).atan2(12_000.0 - pos[0]);
            let pulses =
                node.sector_scan(&field, bearing - 0.12, bearing + 0.12, 0.0, 61 + id as u64);
            let scan = compute_moments(&pulses, &params(), 40);
            per_radar.push(detect_tornados(&scan, pos, &DetectorConfig::default()).detections);
        }
        let merged = merge_detections(&per_radar, 2_000.0);
        assert!(!merged.is_empty());
        assert_eq!(merged[0].radar_count, 2, "both radars confirm: {merged:?}");
    }

    #[test]
    fn work_scales_with_cell_count() {
        let fine = scan_tornado(40);
        let coarse = scan_tornado(400);
        assert!(
            fine.cells_examined > 5 * coarse.cells_examined,
            "fine {} vs coarse {}",
            fine.cells_examined,
            coarse.cells_examined
        );
    }
}
