//! Property-based tests for the time-series substrate.

use proptest::prelude::*;
use ustream_ts::acf::{autocorrelations, autocovariances, ma_theoretical_autocov};
use ustream_ts::ar::levinson_durbin;
use ustream_ts::clt::{iid_clt_mean, ma_clt_mean};
use ustream_ts::diagnostics::ljung_box;
use ustream_ts::generator::{ma_series, white_noise};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Levinson–Durbin inverts the Yule–Walker map for stationary AR(1).
    #[test]
    fn levinson_durbin_inverts_ar1(phi in -0.95f64..0.95, sigma2 in 0.1f64..10.0) {
        let g0 = sigma2 / (1.0 - phi * phi);
        let gammas = vec![g0, phi * g0, phi * phi * g0];
        let (est, v) = levinson_durbin(&gammas, 1);
        prop_assert!((est[0] - phi).abs() < 1e-10);
        prop_assert!((v - sigma2).abs() < 1e-8 * (1.0 + sigma2));
    }

    /// …and for stationary AR(2) (parameters inside the stationarity
    /// triangle: |φ₂|<1, φ₂±φ₁<1).
    #[test]
    fn levinson_durbin_inverts_ar2(p1 in -0.9f64..0.9, p2 in -0.9f64..0.9) {
        prop_assume!(p2.abs() < 0.9 && p1 + p2 < 0.9 && p2 - p1 < 0.9);
        let r1 = p1 / (1.0 - p2);
        let r2 = p1 * r1 + p2;
        // ρ3 from the Yule–Walker recursion.
        let r3 = p1 * r2 + p2 * r1;
        let gammas = vec![1.0, r1, r2, r3];
        let (est, _) = levinson_durbin(&gammas, 2);
        prop_assert!((est[0] - p1).abs() < 1e-9, "φ1 {} vs {}", est[0], p1);
        prop_assert!((est[1] - p2).abs() < 1e-9, "φ2 {} vs {}", est[1], p2);
    }

    /// Sample autocovariances are symmetric under series reversal.
    #[test]
    fn autocovariance_reversal_symmetry(seed in 0u64..500, n in 50usize..300) {
        let xs = white_noise(n, 1.0, seed);
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        let a = autocovariances(&xs, 5);
        let b = autocovariances(&rev, 5);
        for k in 0..=5 {
            prop_assert!((a[k] - b[k]).abs() < 1e-10);
        }
    }

    /// |ρ̂(k)| ≤ 1 always (biased estimator is non-negative definite).
    #[test]
    fn autocorrelation_bounded(seed in 0u64..500, n in 30usize..300, lag in 1usize..10) {
        prop_assume!(lag < n);
        let xs = white_noise(n, 2.0, seed);
        let rhos = autocorrelations(&xs, lag);
        for &r in &rhos {
            prop_assert!(r.abs() <= 1.0 + 1e-12);
        }
    }

    /// MA(q) theoretical autocovariance vanishes past lag q and γ(0) is
    /// the process variance σ²(1+Σθ²).
    #[test]
    fn ma_autocov_cutoff(t1 in -1.5f64..1.5, t2 in -1.5f64..1.5, s2 in 0.1f64..5.0) {
        let g = ma_theoretical_autocov(&[t1, t2], s2, 5);
        prop_assert!((g[0] - s2 * (1.0 + t1 * t1 + t2 * t2)).abs() < 1e-12);
        for gk in g.iter().skip(3) {
            prop_assert!(gk.abs() < 1e-12);
        }
    }

    /// Ljung–Box p-values live in [0,1]; statistic is non-negative.
    #[test]
    fn ljung_box_sane(seed in 0u64..300, n in 50usize..400, h in 1usize..15) {
        prop_assume!(h < n / 2);
        let xs = white_noise(n, 1.0, seed);
        let lb = ljung_box(&xs, h);
        prop_assert!(lb.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&lb.p_value));
    }

    /// For white noise the MA-CLT at q=0 coincides with the iid CLT.
    #[test]
    fn ma_clt_degenerates_to_iid(seed in 0u64..300, n in 50usize..400) {
        let xs = white_noise(n, 1.0, seed);
        let a = ma_clt_mean(&xs, 0);
        let b = iid_clt_mean(&xs);
        prop_assert!((a.mean() - b.mean()).abs() < 1e-12);
        prop_assert!((a.variance() - b.variance()).abs() < 1e-12 * (1.0 + b.variance()));
    }

    /// MA-CLT variance of the mean is positive and shrinks with window
    /// length (≈ 1/n scaling over a 4× window growth).
    #[test]
    fn ma_clt_variance_shrinks_with_n(seed in 0u64..200, theta in 0.0f64..0.9) {
        let short = ma_series(&[theta], 1.0, 100, seed);
        let long = ma_series(&[theta], 1.0, 400, seed + 10_000);
        let vs = ma_clt_mean(&short, 1).variance();
        let vl = ma_clt_mean(&long, 1).variance();
        prop_assert!(vs > 0.0 && vl > 0.0);
        prop_assert!(vl < vs, "variance must shrink: {vs} → {vl}");
    }
}
