//! Synthetic series generators used by tests, benches, and the radar
//! simulator's per-voxel observation sequences.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ustream_prob::dist::Gaussian;

/// Gaussian white noise with standard deviation `sigma`.
pub fn white_noise(n: usize, sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Gaussian::new(0.0, sigma);
    (0..n).map(|_| g.sample(&mut rng)).collect()
}

/// MA(q) series x_t = e_t + Σ θᵢ e_{t−i} with Gaussian innovations.
pub fn ma_series(theta: &[f64], sigma: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Gaussian::new(0.0, sigma);
    let q = theta.len();
    let mut es: Vec<f64> = (0..q).map(|_| g.sample(&mut rng)).collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let e = g.sample(&mut rng);
        let mut x = e;
        for (i, &th) in theta.iter().enumerate() {
            x += th * es[q - 1 - i];
        }
        es.push(e);
        es.remove(0);
        out.push(x);
    }
    out
}

/// AR(p) series x_t = Σ φᵢ x_{t−i} + e_t with Gaussian innovations; a
/// burn-in of 10·p + 100 steps removes initialization transients.
pub fn ar_series(phi: &[f64], sigma: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Gaussian::new(0.0, sigma);
    let p = phi.len();
    let burn = 10 * p + 100;
    let mut hist = vec![0.0f64; p];
    let mut out = Vec::with_capacity(n);
    for t in 0..(n + burn) {
        let mut x = g.sample(&mut rng);
        for (i, &ph) in phi.iter().enumerate() {
            x += ph * hist[p - 1 - i];
        }
        if p > 0 {
            hist.push(x);
            hist.remove(0);
        }
        if t >= burn {
            out.push(x);
        }
    }
    out
}

/// ARMA(p, q) series with Gaussian innovations and burn-in.
pub fn arma_series(phi: &[f64], theta: &[f64], sigma: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Gaussian::new(0.0, sigma);
    let p = phi.len();
    let q = theta.len();
    let burn = 10 * (p + q) + 100;
    let mut xhist = vec![0.0f64; p];
    let mut ehist = vec![0.0f64; q];
    let mut out = Vec::with_capacity(n);
    for t in 0..(n + burn) {
        let e = g.sample(&mut rng);
        let mut x = e;
        for (i, &ph) in phi.iter().enumerate() {
            x += ph * xhist[p - 1 - i];
        }
        for (i, &th) in theta.iter().enumerate() {
            x += th * ehist[q - 1 - i];
        }
        if p > 0 {
            xhist.push(x);
            xhist.remove(0);
        }
        if q > 0 {
            ehist.push(e);
            ehist.remove(0);
        }
        if t >= burn {
            out.push(x);
        }
    }
    out
}

/// A mean level with additive MA noise — the shape of a radar voxel's
/// velocity observations over one dwell (§4.4: "a short sequence of data
/// tends to describe the same phenomena … with correlated noise factors").
pub fn level_plus_ma(level: f64, theta: &[f64], sigma: f64, n: usize, seed: u64) -> Vec<f64> {
    ma_series(theta, sigma, n, seed)
        .into_iter()
        .map(|x| x + level)
        .collect()
}

/// Regime-switching series: `level_a` for the first `n_a` points, then
/// `level_b`, with white noise — used to exercise change detection and
/// bimodal particle clouds.
pub fn regime_switch(
    level_a: f64,
    n_a: usize,
    level_b: f64,
    n_b: usize,
    sigma: f64,
    seed: u64,
) -> Vec<f64> {
    let noise = white_noise(n_a + n_b, sigma, seed);
    noise
        .into_iter()
        .enumerate()
        .map(|(i, e)| if i < n_a { level_a + e } else { level_b + e })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acf::autocorrelations;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn var(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn white_noise_moments() {
        let xs = white_noise(50_000, 2.0, 1);
        assert!(mean(&xs).abs() < 0.05);
        assert!((var(&xs) - 4.0).abs() < 0.15);
    }

    #[test]
    fn ma_variance_matches_theory() {
        // Var = σ²(1 + Σθ²) = 1·(1+0.64) = 1.64
        let xs = ma_series(&[0.8], 1.0, 80_000, 2);
        assert!((var(&xs) - 1.64).abs() < 0.05, "var = {}", var(&xs));
    }

    #[test]
    fn ar1_acf_geometric() {
        let xs = ar_series(&[0.7], 1.0, 80_000, 3);
        let rhos = autocorrelations(&xs, 3);
        assert!((rhos[1] - 0.7).abs() < 0.03);
        assert!((rhos[2] - 0.49).abs() < 0.04);
    }

    #[test]
    fn arma11_first_acf() {
        // ARMA(1,1) φ=0.5, θ=0.3: ρ(1) = (1+φθ)(φ+θ)/(1+2φθ+θ²)
        let (phi, theta) = (0.5, 0.3);
        let expected =
            (1.0 + phi * theta) * (phi + theta) / (1.0 + 2.0 * phi * theta + theta * theta);
        let xs = arma_series(&[phi], &[theta], 1.0, 100_000, 4);
        let rhos = autocorrelations(&xs, 2);
        assert!((rhos[1] - expected).abs() < 0.03, "rho1 = {}", rhos[1]);
    }

    #[test]
    fn level_plus_ma_centers_on_level() {
        let xs = level_plus_ma(17.0, &[0.5, 0.2], 1.0, 40_000, 5);
        assert!((mean(&xs) - 17.0).abs() < 0.05);
    }

    #[test]
    fn regime_switch_has_two_levels() {
        let xs = regime_switch(0.0, 500, 10.0, 500, 0.5, 6);
        assert_eq!(xs.len(), 1000);
        let m_a = mean(&xs[..500]);
        let m_b = mean(&xs[500..]);
        assert!(m_a.abs() < 0.2);
        assert!((m_b - 10.0).abs() < 0.2);
    }

    #[test]
    fn generators_are_deterministic_by_seed() {
        let a = ma_series(&[0.4], 1.0, 100, 7);
        let b = ma_series(&[0.4], 1.0, 100, 7);
        assert_eq!(a, b);
        let c = ma_series(&[0.4], 1.0, 100, 8);
        assert_ne!(a, c);
    }
}
