//! Moving-average models: fitting by the innovations algorithm
//! (Brockwell & Davis §8.3 — reference \[5\] of the paper).

use crate::acf::{autocovariances, ma_theoretical_autocov};

/// A fitted MA(q) model x_t = μ + e_t + Σ θᵢ e_{t−i}.
#[derive(Debug, Clone)]
pub struct MaModel {
    /// MA coefficients θ₁..θ_q.
    pub theta: Vec<f64>,
    /// Innovation variance σ².
    pub sigma2: f64,
    /// Process mean μ.
    pub mean: f64,
}

impl MaModel {
    pub fn order(&self) -> usize {
        self.theta.len()
    }

    /// Process variance γ(0) = σ²(1 + Σθᵢ²).
    pub fn variance(&self) -> f64 {
        self.sigma2 * (1.0 + self.theta.iter().map(|t| t * t).sum::<f64>())
    }

    /// Theoretical autocovariances γ(0..=max_lag).
    pub fn autocovariances(&self, max_lag: usize) -> Vec<f64> {
        ma_theoretical_autocov(&self.theta, self.sigma2, max_lag)
    }

    /// Long-run variance Σ_{|k|≤q} γ(k) — the variance constant in the
    /// CLT for the sample mean of an MA process (§5.1).
    pub fn long_run_variance(&self) -> f64 {
        let g = self.autocovariances(self.order());
        g[0] + 2.0 * g[1..].iter().sum::<f64>()
    }
}

/// Innovations-algorithm estimate of MA(q) from sample autocovariances.
///
/// Runs the innovations recursion to step `m` (≥ q, larger m = better
/// estimates) and reads the MA coefficients from the last row; the
/// innovation variance is the final one-step MSE.
pub fn fit_ma_innovations(xs: &[f64], q: usize, m: usize) -> MaModel {
    assert!(q >= 1, "order must be ≥ 1");
    let m = m.max(q);
    assert!(xs.len() > 2 * m, "series too short for innovations({m})");
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let gammas = autocovariances(xs, m);

    // Innovations recursion: v₀ = γ(0);
    // θ_{n,n−k} = (γ(n−k) − Σ_{j<k} θ_{k,k−j} θ_{n,n−j} v_j) / v_k
    // v_n = γ(0) − Σ_{j<n} θ_{n,n−j}² v_j
    let mut theta = vec![vec![0.0f64; m + 1]; m + 1];
    let mut v = vec![0.0f64; m + 1];
    v[0] = gammas[0];
    for n in 1..=m {
        for k in 0..n {
            let mut acc = gammas[n - k];
            for j in 0..k {
                acc -= theta[k][k - j] * theta[n][n - j] * v[j];
            }
            theta[n][n - k] = if v[k].abs() > 1e-300 { acc / v[k] } else { 0.0 };
        }
        let mut vn = gammas[0];
        for j in 0..n {
            vn -= theta[n][n - j] * theta[n][n - j] * v[j];
        }
        v[n] = vn.max(1e-12);
    }

    let coeffs: Vec<f64> = (1..=q).map(|i| theta[m][i]).collect();
    MaModel {
        theta: coeffs,
        sigma2: v[m],
        mean,
    }
}

/// Convenience: fit MA(q) with a default recursion depth.
pub fn fit_ma(xs: &[f64], q: usize) -> MaModel {
    let m = (q + 10).min(xs.len() / 4);
    fit_ma_innovations(xs, q, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ma_series;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn recovers_ma1() {
        let xs = ma_series(&[0.7], 1.0, 100_000, 31);
        let m = fit_ma(&xs, 1);
        close(m.theta[0], 0.7, 0.05);
        close(m.sigma2, 1.0, 0.06);
    }

    #[test]
    fn recovers_ma2() {
        let xs = ma_series(&[0.6, 0.3], 1.5, 150_000, 32);
        let m = fit_ma(&xs, 2);
        close(m.theta[0], 0.6, 0.06);
        close(m.theta[1], 0.3, 0.06);
        close(m.sigma2, 2.25, 0.15);
    }

    #[test]
    fn variance_matches_sample() {
        let xs = ma_series(&[0.8], 2.0, 100_000, 33);
        let m = fit_ma(&xs, 1);
        let sample_var = {
            let mu = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / xs.len() as f64
        };
        close(m.variance(), sample_var, sample_var * 0.03);
    }

    #[test]
    fn long_run_variance_formula() {
        // MA(1), θ, σ²: LRV = σ²(1+θ)².
        let m = MaModel {
            theta: vec![0.5],
            sigma2: 2.0,
            mean: 0.0,
        };
        close(m.long_run_variance(), 2.0 * 1.5 * 1.5, 1e-12);
    }

    #[test]
    fn negative_theta_long_run_variance_shrinks() {
        // Anti-correlated noise reduces the variance of the mean.
        let pos = MaModel {
            theta: vec![0.5],
            sigma2: 1.0,
            mean: 0.0,
        };
        let neg = MaModel {
            theta: vec![-0.5],
            sigma2: 1.0,
            mean: 0.0,
        };
        assert!(neg.long_run_variance() < pos.long_run_variance());
        assert!(neg.long_run_variance() < neg.variance());
    }

    #[test]
    fn theoretical_autocov_cutoff() {
        let m = MaModel {
            theta: vec![0.4, 0.2],
            sigma2: 1.0,
            mean: 0.0,
        };
        let g = m.autocovariances(5);
        assert!(g[3].abs() < 1e-12 && g[4].abs() < 1e-12 && g[5].abs() < 1e-12);
    }
}
