//! Autoregressive models: Yule–Walker fitting via Levinson–Durbin.

use crate::acf::autocovariances;

/// A fitted AR(p) model x_t = Σ φᵢ x_{t−i} + e_t (on the centred series).
#[derive(Debug, Clone)]
pub struct ArModel {
    /// AR coefficients φ₁..φ_p.
    pub phi: Vec<f64>,
    /// Innovation variance σ².
    pub sigma2: f64,
    /// Series mean removed before fitting.
    pub mean: f64,
}

impl ArModel {
    pub fn order(&self) -> usize {
        self.phi.len()
    }

    /// One-step-ahead prediction given the most recent observations
    /// (ordered oldest → newest; needs ≥ p values).
    pub fn predict_next(&self, recent: &[f64]) -> f64 {
        let p = self.phi.len();
        assert!(recent.len() >= p, "need at least p recent values");
        let tail = &recent[recent.len() - p..];
        let mut x = self.mean;
        for (i, &ph) in self.phi.iter().enumerate() {
            x += ph * (tail[p - 1 - i] - self.mean);
        }
        x
    }

    /// Stationarity check: all characteristic roots outside the unit
    /// circle, tested by evaluating the AR polynomial on a circle grid.
    pub fn is_stationary(&self) -> bool {
        // φ(z) = 1 − φ₁z − … − φ_p z^p must have no roots with |z| ≤ 1.
        // Grid test on |z| = 1 plus the real interval [−1, 1].
        let poly = |re: f64, im: f64| -> f64 {
            let mut zr = 1.0;
            let mut zi = 0.0;
            let mut sr = 1.0;
            let mut si = 0.0;
            for &ph in &self.phi {
                // z^k update
                let (nr, ni) = (zr * re - zi * im, zr * im + zi * re);
                zr = nr;
                zi = ni;
                sr -= ph * zr;
                si -= ph * zi;
            }
            (sr * sr + si * si).sqrt()
        };
        for k in 0..256 {
            let th = 2.0 * std::f64::consts::PI * k as f64 / 256.0;
            if poly(th.cos(), th.sin()) < 1e-3 {
                return false;
            }
        }
        for k in 0..128 {
            let x = -1.0 + 2.0 * k as f64 / 127.0;
            if poly(x, 0.0) < 1e-3 {
                return false;
            }
        }
        true
    }
}

/// Levinson–Durbin recursion: solve the Yule–Walker equations for AR(p)
/// from autocovariances γ(0..=p). Returns (φ, innovation variance).
pub fn levinson_durbin(gammas: &[f64], p: usize) -> (Vec<f64>, f64) {
    assert!(gammas.len() > p, "need γ(0..=p)");
    assert!(gammas[0] > 0.0, "γ(0) must be positive");
    let mut phi = vec![0.0f64; p];
    let mut prev = vec![0.0f64; p];
    let mut v = gammas[0];
    for k in 1..=p {
        let mut acc = gammas[k];
        for j in 1..k {
            acc -= prev[j - 1] * gammas[k - j];
        }
        let kappa = acc / v;
        phi[k - 1] = kappa;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - kappa * prev[k - 1 - j];
        }
        v *= 1.0 - kappa * kappa;
        prev[..k].copy_from_slice(&phi[..k]);
    }
    (phi, v.max(0.0))
}

/// Fit an AR(p) model to a series by Yule–Walker.
pub fn fit_ar(xs: &[f64], p: usize) -> ArModel {
    assert!(p >= 1 && xs.len() > 2 * p, "series too short for AR({p})");
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let gammas = autocovariances(xs, p);
    let (phi, sigma2) = levinson_durbin(&gammas, p);
    ArModel { phi, sigma2, mean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ar_series;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn levinson_durbin_ar1_closed_form() {
        // AR(1) with φ: γ(0) = σ²/(1−φ²), γ(1) = φγ(0).
        let (phi_true, sigma2_true) = (0.6, 1.0);
        let g0 = sigma2_true / (1.0 - phi_true * phi_true);
        let gammas = vec![g0, phi_true * g0];
        let (phi, s2) = levinson_durbin(&gammas, 1);
        close(phi[0], phi_true, 1e-12);
        close(s2, sigma2_true, 1e-12);
    }

    #[test]
    fn levinson_durbin_ar2_closed_form() {
        // AR(2) with φ = (0.5, 0.3): use Yule–Walker to derive γ and
        // verify the recursion inverts it.
        let (p1, p2) = (0.5, 0.3);
        // ρ1 = φ1/(1−φ2), ρ2 = φ1ρ1 + φ2
        let r1: f64 = p1 / (1.0 - p2);
        let r2 = p1 * r1 + p2;
        let g0 = 1.0; // arbitrary scale
        let gammas = vec![g0, r1 * g0, r2 * g0];
        let (phi, _) = levinson_durbin(&gammas, 2);
        close(phi[0], p1, 1e-12);
        close(phi[1], p2, 1e-12);
    }

    #[test]
    fn fit_recovers_simulated_ar2() {
        let xs = ar_series(&[0.5, 0.2], 1.0, 60_000, 21);
        let m = fit_ar(&xs, 2);
        close(m.phi[0], 0.5, 0.03);
        close(m.phi[1], 0.2, 0.03);
        close(m.sigma2, 1.0, 0.05);
        assert!(m.is_stationary());
    }

    #[test]
    fn prediction_uses_recent_history() {
        let m = ArModel {
            phi: vec![0.5],
            sigma2: 1.0,
            mean: 10.0,
        };
        // x̂ = μ + 0.5(x_last − μ)
        close(m.predict_next(&[12.0]), 11.0, 1e-12);
        close(m.predict_next(&[0.0, 12.0]), 11.0, 1e-12);
    }

    #[test]
    fn nonstationary_detected() {
        let m = ArModel {
            phi: vec![1.0],
            sigma2: 1.0,
            mean: 0.0,
        };
        assert!(!m.is_stationary());
        let ok = ArModel {
            phi: vec![0.5],
            sigma2: 1.0,
            mean: 0.0,
        };
        assert!(ok.is_stationary());
    }

    #[test]
    fn higher_order_fit_of_low_order_process_shrinks_extra_terms() {
        let xs = ar_series(&[0.6], 1.0, 60_000, 22);
        let m = fit_ar(&xs, 4);
        close(m.phi[0], 0.6, 0.03);
        for k in 1..4 {
            assert!(m.phi[k].abs() < 0.05, "phi[{k}] = {}", m.phi[k]);
        }
    }
}
