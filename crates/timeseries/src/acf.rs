//! Sample autocovariance / autocorrelation.
//!
//! §4.4: "sequences obeying the MA assumption can be identified by
//! computing their k-lag autocorrelations, which can be performed using at
//! most two scans of the input sequence." This module is exactly that:
//! one scan for the mean, one scan accumulating all K lag products.

/// Sample autocovariances γ̂(0..=max_lag) of a series (biased, divide by n —
/// the standard choice that keeps the covariance sequence non-negative
/// definite).
pub fn autocovariances(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(n >= 2, "need at least two observations");
    assert!(max_lag < n, "max_lag must be < series length");
    // Scan 1: mean.
    let mean = xs.iter().sum::<f64>() / n as f64;
    // Scan 2: all lag products.
    let mut gammas = vec![0.0; max_lag + 1];
    for (t, &xt) in xs.iter().enumerate() {
        let dt = xt - mean;
        let kmax = max_lag.min(n - 1 - t);
        for k in 0..=kmax {
            gammas[k] += dt * (xs[t + k] - mean);
        }
    }
    for g in gammas.iter_mut() {
        *g /= n as f64;
    }
    gammas
}

/// Sample autocorrelations ρ̂(0..=max_lag); ρ̂(0) = 1.
pub fn autocorrelations(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let gammas = autocovariances(xs, max_lag);
    let g0 = gammas[0];
    if g0 <= 0.0 {
        // Constant series: define ρ(0)=1, rest 0.
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    gammas.iter().map(|&g| g / g0).collect()
}

/// Bartlett standard error of ρ̂(k) under the hypothesis that the process
/// is MA(q) with q = k−1: se = √((1 + 2Σ_{j=1}^{k−1} ρ̂(j)²)/n).
pub fn bartlett_se(rhos: &[f64], k: usize, n: usize) -> f64 {
    assert!(k >= 1 && k < rhos.len());
    let sum_sq: f64 = rhos[1..k].iter().map(|r| r * r).sum();
    ((1.0 + 2.0 * sum_sq) / n as f64).sqrt()
}

/// Theoretical autocovariances of an MA(q) process with coefficients
/// `theta` (θ₁..θ_q; θ₀ = 1 implied) and innovation variance σ²:
/// γ(k) = σ² Σⱼ θⱼ·θⱼ₊ₖ.
pub fn ma_theoretical_autocov(theta: &[f64], sigma2: f64, max_lag: usize) -> Vec<f64> {
    let q = theta.len();
    let mut full = Vec::with_capacity(q + 1);
    full.push(1.0);
    full.extend_from_slice(theta);
    (0..=max_lag)
        .map(|k| {
            if k > q {
                0.0
            } else {
                sigma2
                    * full[..=q - k]
                        .iter()
                        .zip(full[k..].iter())
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()
    }

    #[test]
    fn rho_zero_is_one() {
        let xs = white_noise(500, 1);
        let rhos = autocorrelations(&xs, 10);
        close(rhos[0], 1.0, 1e-12);
    }

    #[test]
    fn white_noise_acf_within_bands() {
        let n = 4000;
        let xs = white_noise(n, 2);
        let rhos = autocorrelations(&xs, 20);
        let band = 3.0 / (n as f64).sqrt(); // 3σ band
        for (k, rho) in rhos.iter().enumerate().skip(1) {
            assert!(
                rho.abs() < band,
                "lag {k} acf {rho} outside white-noise band {band}"
            );
        }
    }

    #[test]
    fn perfectly_correlated_series() {
        // Linear trend: ACF near 1 at small lags.
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let rhos = autocorrelations(&xs, 3);
        assert!(rhos[1] > 0.99);
    }

    #[test]
    fn constant_series_is_safe() {
        let xs = vec![3.0; 100];
        let rhos = autocorrelations(&xs, 5);
        close(rhos[0], 1.0, 1e-12);
        for &rho in rhos.iter().skip(1) {
            close(rho, 0.0, 1e-12);
        }
    }

    #[test]
    fn ma1_sample_acf_matches_theory() {
        // MA(1) with θ = 0.8: ρ(1) = θ/(1+θ²) ≈ 0.4878, ρ(k>1) = 0.
        let theta = 0.8;
        let n = 60_000;
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev_e = 0.0;
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            // Gaussian-ish noise from sum of uniforms (Irwin–Hall 12).
            let e: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            xs.push(e + theta * prev_e);
            prev_e = e;
        }
        let rhos = autocorrelations(&xs, 5);
        close(rhos[1], theta / (1.0 + theta * theta), 0.02);
        close(rhos[2], 0.0, 0.02);
        close(rhos[3], 0.0, 0.02);
    }

    #[test]
    fn theoretical_ma_autocov() {
        // MA(1), θ=0.5, σ²=2: γ0 = 2(1+0.25)=2.5, γ1 = 2·0.5=1, γ2=0.
        let g = ma_theoretical_autocov(&[0.5], 2.0, 3);
        close(g[0], 2.5, 1e-12);
        close(g[1], 1.0, 1e-12);
        close(g[2], 0.0, 1e-12);
        close(g[3], 0.0, 1e-12);
    }

    #[test]
    fn bartlett_se_grows_with_correlation() {
        let rhos = vec![1.0, 0.5, 0.3, 0.0];
        let se1 = bartlett_se(&rhos, 1, 100); // pure white-noise SE
        let se3 = bartlett_se(&rhos, 3, 100); // accounts for ρ1, ρ2
        close(se1, 0.1, 1e-12);
        assert!(se3 > se1);
    }

    #[test]
    #[should_panic(expected = "max_lag must be")]
    fn rejects_excessive_lag() {
        autocovariances(&[1.0, 2.0, 3.0], 3);
    }
}
