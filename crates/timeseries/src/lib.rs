//! # ustream-ts — time-series substrate
//!
//! Implements §4.4 and the "correlated variables" half of §5.1:
//! identifying when a window of correlated observations can be treated as
//! a moving-average process (two scans over the data), and deriving the
//! asymptotic result distribution of windowed aggregates via the Central
//! Limit Theorem for MA series.
//!
//! - [`acf`] — sample autocovariance/autocorrelation, Bartlett bands.
//! - [`diagnostics`] — Ljung–Box whiteness test, MA(q) order
//!   identification by ACF cutoff.
//! - [`ar`], [`ma`], [`arma`] — model fitting (Levinson–Durbin,
//!   innovations algorithm, Hannan–Rissanen) and simulation support.
//! - [`clt`] — MA-CLT for windowed mean/sum; naive-iid baseline;
//!   Newey–West fallback.
//! - [`generator`] — synthetic series for tests/benches.
//! - [`linalg`] — tiny dense solvers for the regression steps.

pub mod acf;
pub mod ar;
pub mod arma;
pub mod clt;
pub mod diagnostics;
pub mod generator;
pub mod linalg;
pub mod ma;

pub use ar::{fit_ar, ArModel};
pub use arma::{fit_arma, select_arma_order, ArmaModel};
pub use clt::{
    iid_clt_mean, ma_clt_mean, ma_clt_pipeline, ma_clt_sum, newey_west_mean, MaCltResult,
};
pub use diagnostics::{identify_ma_order, ljung_box, LjungBox, MaIdentification};
pub use ma::{fit_ma, fit_ma_innovations, MaModel};
