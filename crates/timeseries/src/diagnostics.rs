//! Model testing and identification (§5.1: "model testing and
//! identification tools (\[5\], Chapter 9) can be used to test the
//! randomness and determine the order of correlation").
//!
//! - Ljung–Box portmanteau test for whiteness.
//! - MA(q) order identification by the ACF-cutoff rule with Bartlett
//!   bands — the "at most two scans" procedure of §4.4.

use crate::acf::{autocorrelations, bartlett_se};
use ustream_prob::special::chi_square_cdf;

/// Result of a Ljung–Box whiteness test.
#[derive(Debug, Clone, Copy)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom (= number of lags tested).
    pub dof: usize,
    /// p-value under the χ² null (large p ⇒ consistent with white noise).
    pub p_value: f64,
}

/// Ljung–Box test over lags 1..=h.
pub fn ljung_box(xs: &[f64], h: usize) -> LjungBox {
    let n = xs.len();
    assert!(h >= 1 && h < n, "need 1 ≤ h < n");
    let rhos = autocorrelations(xs, h);
    let nf = n as f64;
    let q = nf
        * (nf + 2.0)
        * (1..=h)
            .map(|k| rhos[k] * rhos[k] / (nf - k as f64))
            .sum::<f64>();
    LjungBox {
        statistic: q,
        dof: h,
        p_value: 1.0 - chi_square_cdf(q, h as f64),
    }
}

/// Outcome of MA-order identification.
#[derive(Debug, Clone)]
pub struct MaIdentification {
    /// Identified order q (0 = white noise).
    pub order: usize,
    /// Whether an MA(≤ max_order) description is adequate: all ACF values
    /// past the identified cutoff stay inside their Bartlett bands.
    pub ma_adequate: bool,
    /// Sample autocorrelations used for the decision (ρ̂(0..=max_lag)).
    pub rhos: Vec<f64>,
}

/// Identify the MA order by the classic ACF-cutoff rule: the largest lag
/// whose autocorrelation is significant at `z` Bartlett standard errors
/// (lags above it must all be insignificant). Two scans of the data.
pub fn identify_ma_order(xs: &[f64], max_order: usize, z: f64) -> MaIdentification {
    let n = xs.len();
    let max_lag = (2 * max_order + 2).min(n - 1);
    let rhos = autocorrelations(xs, max_lag);
    // Find the last significant lag assuming MA(k−1) nulls progressively.
    let mut order = 0usize;
    for k in 1..=max_lag {
        let se = bartlett_se(&rhos, k, n);
        if rhos[k].abs() > z * se {
            order = k;
        }
    }
    let ma_adequate = order <= max_order;
    MaIdentification {
        order: order.min(max_order),
        ma_adequate,
        rhos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ar_series, ma_series, white_noise};

    #[test]
    fn ljung_box_accepts_white_noise() {
        let xs = white_noise(4000, 1.0, 11);
        let lb = ljung_box(&xs, 10);
        assert!(
            lb.p_value > 0.01,
            "white noise rejected: Q={} p={}",
            lb.statistic,
            lb.p_value
        );
    }

    #[test]
    fn ljung_box_rejects_correlated_series() {
        let xs = ma_series(&[0.9], 1.0, 4000, 12);
        let lb = ljung_box(&xs, 10);
        assert!(
            lb.p_value < 1e-6,
            "MA(1) not rejected: Q={} p={}",
            lb.statistic,
            lb.p_value
        );
    }

    #[test]
    fn ljung_box_statistic_nonnegative() {
        let xs = white_noise(200, 2.0, 13);
        let lb = ljung_box(&xs, 5);
        assert!(lb.statistic >= 0.0);
        assert!((0.0..=1.0).contains(&lb.p_value));
        assert_eq!(lb.dof, 5);
    }

    #[test]
    fn identifies_white_noise_as_order_zero() {
        let xs = white_noise(6000, 1.0, 14);
        let id = identify_ma_order(&xs, 5, 3.0);
        assert_eq!(id.order, 0, "rhos: {:?}", &id.rhos[..6]);
        assert!(id.ma_adequate);
    }

    #[test]
    fn identifies_ma1_and_ma2() {
        let xs1 = ma_series(&[0.8], 1.0, 30_000, 15);
        let id1 = identify_ma_order(&xs1, 5, 3.0);
        assert_eq!(id1.order, 1, "rhos: {:?}", &id1.rhos[..6]);

        let xs2 = ma_series(&[0.9, 0.6], 1.0, 30_000, 16);
        let id2 = identify_ma_order(&xs2, 5, 3.0);
        assert_eq!(id2.order, 2, "rhos: {:?}", &id2.rhos[..6]);
    }

    #[test]
    fn ar_process_flagged_as_non_ma() {
        // AR(1) with φ = 0.9 has slowly-decaying ACF ⇒ not MA(≤3).
        let xs = ar_series(&[0.9], 1.0, 20_000, 17);
        let id = identify_ma_order(&xs, 3, 3.0);
        assert!(
            !id.ma_adequate,
            "AR(1) should not look like a low-order MA (order {})",
            id.order
        );
    }
}
