//! Tiny dense linear-algebra helpers (Gaussian elimination) for the
//! regression steps of ARMA fitting. Systems here are (p+q)×(p+q) with
//! p+q ≤ ~10, so a straightforward partial-pivot solve is plenty.

/// Solve A·x = b for square row-major `a` (n×n). Returns `None` when the
/// matrix is numerically singular.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        let diag = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for k in (row + 1)..n {
            s -= m[row * n + k] * x[k];
        }
        x[row] = s / m[row * n + row];
    }
    Some(x)
}

/// Ordinary least squares: minimize ‖X·β − y‖² via the normal equations
/// XᵀX β = Xᵀy. `x` is row-major n×p. Returns `None` if XᵀX is singular.
pub fn least_squares(x: &[f64], y: &[f64], n: usize, p: usize) -> Option<Vec<f64>> {
    assert_eq!(x.len(), n * p);
    assert_eq!(y.len(), n);
    let mut xtx = vec![0.0; p * p];
    let mut xty = vec![0.0; p];
    for row in 0..n {
        let xr = &x[row * p..(row + 1) * p];
        for i in 0..p {
            xty[i] += xr[i] * y[row];
            for j in i..p {
                xtx[i * p + j] += xr[i] * xr[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..p {
        for j in 0..i {
            xtx[i * p + j] = xtx[j * p + i];
        }
    }
    solve(&xtx, &xty, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] ⇒ x = [0.8, 1.4]
        let x = solve(&[2.0, 1.0, 1.0, 3.0], &[3.0, 5.0], 2).unwrap();
        close(x[0], 0.8, 1e-12);
        close(x[1], 1.4, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[2.0, 3.0], 2).unwrap();
        close(x[0], 3.0, 1e-12);
        close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        assert!(solve(&[1.0, 2.0, 2.0, 4.0], &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2x + 1 exactly.
        let n = 20;
        let mut xm = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let xi = i as f64;
            xm.push(1.0);
            xm.push(xi);
            y.push(2.0 * xi + 1.0);
        }
        let beta = least_squares(&xm, &y, n, 2).unwrap();
        close(beta[0], 1.0, 1e-9);
        close(beta[1], 2.0, 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5000;
        let mut xm = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let xi: f64 = rng.gen::<f64>() * 10.0;
            xm.push(1.0);
            xm.push(xi);
            y.push(-3.0 + 0.5 * xi + (rng.gen::<f64>() - 0.5));
        }
        let beta = least_squares(&xm, &y, n, 2).unwrap();
        close(beta[0], -3.0, 0.05);
        close(beta[1], 0.5, 0.01);
    }
}
