//! Central Limit Theorem for correlated (time-series) aggregation.
//!
//! §5.1, "Correlated variables": for a series from an MA model "the
//! Central Limit Theorem states that the average … has an asymptotic
//! normal distribution, of which the mean and variance can be estimated
//! based on the sample mean and sample autocorrelation function."
//!
//! The variance of the sample mean of a stationary series is
//!   Var(x̄) = (1/n) Σ_{|k|<n} (1 − |k|/n) γ(k),
//! which for an MA(q) truncates at lag q. We estimate γ from the data
//! (two scans) and return the asymptotic Gaussian for the mean or sum.

use crate::acf::autocovariances;
use crate::diagnostics::identify_ma_order;
use ustream_prob::dist::Gaussian;

/// Asymptotic distribution of the sample MEAN of a window assumed to come
/// from an MA(q) process; `q` is typically obtained from
/// [`identify_ma_order`]. Uses the finite-sample Bartlett-tapered variance
/// with the lag-q cutoff.
pub fn ma_clt_mean(xs: &[f64], q: usize) -> Gaussian {
    let n = xs.len();
    assert!(n >= 2, "need at least two observations");
    let q = q.min(n - 1);
    let gammas = autocovariances(xs, q);
    let nf = n as f64;
    let mut var = gammas[0];
    for (k, &g) in gammas.iter().enumerate().skip(1) {
        var += 2.0 * (1.0 - k as f64 / nf) * g;
    }
    var /= nf;
    let mean = xs.iter().sum::<f64>() / nf;
    Gaussian::from_mean_var(mean, var.max(1e-18))
}

/// Asymptotic distribution of the SUM of the window (mean scaled by n).
pub fn ma_clt_sum(xs: &[f64], q: usize) -> Gaussian {
    let n = xs.len() as f64;
    let mean_dist = ma_clt_mean(xs, q);
    Gaussian::from_mean_var(
        mean_dist.mean() * n,
        (mean_dist.variance() * n * n).max(1e-18),
    )
}

/// Naive-iid CLT for the mean — deliberately ignores autocorrelation.
/// Kept as the "wrong model" baseline the ablation bench compares against:
/// for positively-correlated series it *underestimates* the variance of
/// the mean (overconfident uncertainty bounds).
pub fn iid_clt_mean(xs: &[f64]) -> Gaussian {
    let n = xs.len();
    assert!(n >= 2);
    let nf = n as f64;
    let mean = xs.iter().sum::<f64>() / nf;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nf;
    Gaussian::from_mean_var(mean, (var / nf).max(1e-18))
}

/// End-to-end §4.4 path: identify whether the window is MA(≤ max_order)
/// (two scans), then return the CLT Gaussian for the mean along with the
/// identification outcome.
#[derive(Debug, Clone)]
pub struct MaCltResult {
    /// Asymptotic distribution of the window mean.
    pub mean_dist: Gaussian,
    /// Identified MA order.
    pub order: usize,
    /// Whether the MA(≤ max_order) assumption held.
    pub ma_adequate: bool,
}

/// Identify the MA order, then apply the MA CLT. When identification says
/// the window is not MA(≤ max_order), the caller may fall back to
/// Newey–West ([`newey_west_mean`]) — we still return the lag-capped
/// estimate plus the adequacy flag.
pub fn ma_clt_pipeline(xs: &[f64], max_order: usize, z: f64) -> MaCltResult {
    let id = identify_ma_order(xs, max_order, z);
    let mean_dist = ma_clt_mean(xs, id.order);
    MaCltResult {
        mean_dist,
        order: id.order,
        ma_adequate: id.ma_adequate,
    }
}

/// Newey–West (Bartlett-kernel) long-run variance estimator with
/// bandwidth `b`; robust fallback when no MA structure is identified.
/// Returns the asymptotic Gaussian of the mean.
pub fn newey_west_mean(xs: &[f64], b: usize) -> Gaussian {
    let n = xs.len();
    assert!(n >= 2 && b < n);
    let gammas = autocovariances(xs, b);
    let mut lrv = gammas[0];
    for (k, &g) in gammas.iter().enumerate().skip(1) {
        let w = 1.0 - k as f64 / (b as f64 + 1.0);
        lrv += 2.0 * w * g;
    }
    let nf = n as f64;
    let mean = xs.iter().sum::<f64>() / nf;
    Gaussian::from_mean_var(mean, (lrv / nf).max(1e-18))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ma_series, white_noise};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    /// Monte-Carlo variance of the window mean of an MA(1) process.
    fn mc_mean_variance(theta: f64, sigma: f64, window: usize, reps: usize) -> f64 {
        let mut means = Vec::with_capacity(reps);
        for r in 0..reps {
            let xs = ma_series(&[theta], sigma, window, 1000 + r as u64);
            means.push(xs.iter().sum::<f64>() / window as f64);
        }
        let mu = means.iter().sum::<f64>() / reps as f64;
        means.iter().map(|m| (m - mu) * (m - mu)).sum::<f64>() / reps as f64
    }

    #[test]
    fn ma_clt_variance_matches_monte_carlo() {
        let (theta, sigma, window) = (0.8, 1.0, 200);
        let mc_var = mc_mean_variance(theta, sigma, window, 3000);
        // Average the estimator across windows to remove estimation noise.
        let mut est = 0.0;
        let reps = 200;
        for r in 0..reps {
            let xs = ma_series(&[theta], sigma, window, 5000 + r as u64);
            est += ma_clt_mean(&xs, 1).variance();
        }
        est /= reps as f64;
        close(est, mc_var, mc_var * 0.15);
    }

    #[test]
    fn iid_clt_underestimates_for_positive_correlation() {
        // The whole point of §4.4: ignoring correlation is overconfident.
        let (theta, sigma, window) = (0.8, 1.0, 200);
        let mc_var = mc_mean_variance(theta, sigma, window, 3000);
        let mut naive = 0.0;
        let reps = 200;
        for r in 0..reps {
            let xs = ma_series(&[theta], sigma, window, 9000 + r as u64);
            naive += iid_clt_mean(&xs).variance();
        }
        naive /= reps as f64;
        assert!(
            naive < 0.7 * mc_var,
            "naive {naive} should be well below truth {mc_var}"
        );
    }

    #[test]
    fn white_noise_ma_and_iid_agree() {
        let xs = white_noise(5000, 1.0, 51);
        let a = ma_clt_mean(&xs, 0);
        let b = iid_clt_mean(&xs);
        close(a.mean(), b.mean(), 1e-12);
        close(a.variance(), b.variance(), b.variance() * 1e-9);
    }

    #[test]
    fn sum_is_scaled_mean() {
        let xs = ma_series(&[0.5], 1.0, 300, 52);
        let mean_d = ma_clt_mean(&xs, 1);
        let sum_d = ma_clt_sum(&xs, 1);
        close(sum_d.mean(), mean_d.mean() * 300.0, 1e-9);
        close(sum_d.variance(), mean_d.variance() * 300.0 * 300.0, 1e-6);
    }

    #[test]
    fn pipeline_identifies_and_estimates() {
        let xs = ma_series(&[0.7], 1.0, 20_000, 53);
        let out = ma_clt_pipeline(&xs, 4, 3.0);
        assert_eq!(out.order, 1);
        assert!(out.ma_adequate);
        // Variance should exceed the naive-iid estimate (θ > 0).
        assert!(out.mean_dist.variance() > iid_clt_mean(&xs).variance());
    }

    #[test]
    fn newey_west_close_to_ma_clt_for_ma_process() {
        let xs = ma_series(&[0.6], 1.0, 20_000, 54);
        let a = ma_clt_mean(&xs, 1);
        let b = newey_west_mean(&xs, 8);
        close(b.variance(), a.variance(), a.variance() * 0.2);
    }
}
