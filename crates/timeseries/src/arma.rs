//! ARMA(p, q) models via the Hannan–Rissanen two-stage procedure.
//!
//! §4.4: "There are well known numeric methods that given observed data,
//! find the ARMA(p,q) model together with the coefficients that best fits
//! the data. These fitting methods, however, may take many passes over
//! the data" — precisely why the paper's fast path prefers the pure-MA
//! shortcut. We implement the full fit anyway (it is the baseline the MA
//! shortcut is compared against in the ablation bench).

use crate::ar::fit_ar;
use crate::linalg::least_squares;

/// A fitted ARMA(p, q) model on the centred series:
/// x_t = Σ φᵢ x_{t−i} + e_t + Σ θⱼ e_{t−j}.
#[derive(Debug, Clone)]
pub struct ArmaModel {
    pub phi: Vec<f64>,
    pub theta: Vec<f64>,
    pub sigma2: f64,
    pub mean: f64,
}

impl ArmaModel {
    pub fn orders(&self) -> (usize, usize) {
        (self.phi.len(), self.theta.len())
    }

    /// In-sample one-step residuals (innovation estimates).
    pub fn residuals(&self, xs: &[f64]) -> Vec<f64> {
        let p = self.phi.len();
        let q = self.theta.len();
        let n = xs.len();
        let mut es = vec![0.0f64; n];
        for t in 0..n {
            let mut pred = self.mean;
            for (i, &ph) in self.phi.iter().enumerate() {
                if t > i {
                    pred += ph * (xs[t - 1 - i] - self.mean);
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                if t > j {
                    pred += th * es[t - 1 - j];
                }
            }
            es[t] = xs[t] - pred;
            let _ = (p, q);
        }
        es
    }
}

/// Hannan–Rissanen estimation of ARMA(p, q):
/// 1. Fit a long AR(m) (m ≈ max(p,q) + ⌈log n⌉) by Yule–Walker and take
///    its residuals as innovation proxies ê.
/// 2. Regress x_t on (x_{t−1}..x_{t−p}, ê_{t−1}..ê_{t−q}) by OLS.
///
/// Returns `None` when the regression is singular (degenerate input).
pub fn fit_arma(xs: &[f64], p: usize, q: usize) -> Option<ArmaModel> {
    assert!(p + q >= 1, "need at least one coefficient");
    let n = xs.len();
    let m = (p.max(q) + (n as f64).ln().ceil() as usize).max(p + q + 1);
    assert!(n > 4 * (m + p + q), "series too short for ARMA({p},{q})");
    let mean = xs.iter().sum::<f64>() / n as f64;
    let centred: Vec<f64> = xs.iter().map(|x| x - mean).collect();

    // Stage 1: long-AR residuals.
    let long_ar = fit_ar(xs, m);
    let mut ehat = vec![0.0f64; n];
    for t in m..n {
        let mut pred = 0.0;
        for (i, &ph) in long_ar.phi.iter().enumerate() {
            pred += ph * centred[t - 1 - i];
        }
        ehat[t] = centred[t] - pred;
    }

    // Stage 2: OLS on lagged x and lagged ê.
    let start = m + p.max(q);
    let rows = n - start;
    let cols = p + q;
    let mut xm = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in start..n {
        for i in 1..=p {
            xm.push(centred[t - i]);
        }
        for j in 1..=q {
            xm.push(ehat[t - j]);
        }
        y.push(centred[t]);
    }
    let beta = least_squares(&xm, &y, rows, cols)?;
    let phi = beta[..p].to_vec();
    let theta = beta[p..].to_vec();

    let model = ArmaModel {
        phi,
        theta,
        sigma2: 0.0,
        mean,
    };
    let res = model.residuals(xs);
    let sigma2 = res[start..].iter().map(|e| e * e).sum::<f64>() / (n - start) as f64;
    Some(ArmaModel { sigma2, ..model })
}

/// AIC-based order selection over ARMA(p ≤ max_p, q ≤ max_q) — the
/// "model testing and identification tools (\[5\], Chapter 9)" used to
/// "determine the order of correlation" (§5.1). AIC is computed from the
/// Gaussian likelihood implied by the residual variance:
/// AIC = n·ln(σ̂²) + 2(p + q + 1).
pub fn select_arma_order(
    xs: &[f64],
    max_p: usize,
    max_q: usize,
) -> Option<(usize, usize, ArmaModel)> {
    assert!(max_p + max_q >= 1);
    let n = xs.len() as f64;
    let mut best: Option<(f64, usize, usize, ArmaModel)> = None;
    for p in 0..=max_p {
        for q in 0..=max_q {
            if p + q == 0 {
                continue;
            }
            let Some(model) = fit_arma(xs, p, q) else {
                continue;
            };
            if model.sigma2 <= 0.0 {
                continue;
            }
            let aic = n * model.sigma2.ln() + 2.0 * (p + q + 1) as f64;
            let better = best.as_ref().is_none_or(|(b, _, _, _)| aic < *b);
            if better {
                best = Some((aic, p, q, model));
            }
        }
    }
    best.map(|(_, p, q, m)| (p, q, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{arma_series, ma_series};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn recovers_arma11() {
        let xs = arma_series(&[0.6], &[0.4], 1.0, 120_000, 41);
        let m = fit_arma(&xs, 1, 1).unwrap();
        close(m.phi[0], 0.6, 0.05);
        close(m.theta[0], 0.4, 0.07);
        close(m.sigma2, 1.0, 0.05);
    }

    #[test]
    fn recovers_pure_ar_as_special_case() {
        let xs = arma_series(&[0.5, 0.2], &[], 1.0, 100_000, 42);
        let m = fit_arma(&xs, 2, 0).unwrap();
        close(m.phi[0], 0.5, 0.04);
        close(m.phi[1], 0.2, 0.04);
    }

    #[test]
    fn recovers_pure_ma_as_special_case() {
        let xs = ma_series(&[0.7], 1.0, 120_000, 43);
        let m = fit_arma(&xs, 0, 1).unwrap();
        close(m.theta[0], 0.7, 0.05);
    }

    #[test]
    fn residual_variance_close_to_innovation_variance() {
        let xs = arma_series(&[0.5], &[0.3], 2.0, 100_000, 44);
        let m = fit_arma(&xs, 1, 1).unwrap();
        close(m.sigma2, 4.0, 0.25);
    }

    #[test]
    fn order_selection_prefers_parsimonious_models() {
        // AR(1) data: the selected model should not need q > 0 to explain
        // the dynamics (σ̂² barely improves, AIC penalizes the extra term).
        let xs = arma_series(&[0.7], &[], 1.0, 60_000, 46);
        let (p, q, model) = select_arma_order(&xs, 2, 2).unwrap();
        assert!(p >= 1, "needs at least AR(1), got ({p},{q})");
        assert!((model.sigma2 - 1.0).abs() < 0.08, "σ̂² = {}", model.sigma2);
        // The AR(1) coefficient must be recovered whichever order wins.
        if p >= 1 {
            assert!((model.phi[0] - 0.7).abs() < 0.15, "φ1 = {}", model.phi[0]);
        }
    }

    #[test]
    fn order_selection_detects_ma_component() {
        let xs = arma_series(&[], &[0.8], 1.0, 60_000, 47);
        let (_, q, _) = select_arma_order(&xs, 2, 2).unwrap();
        assert!(q >= 1, "MA dynamics require q ≥ 1");
    }

    #[test]
    fn residuals_of_true_model_are_white() {
        let xs = arma_series(&[0.5], &[0.3], 1.0, 50_000, 45);
        let m = fit_arma(&xs, 1, 1).unwrap();
        let res = m.residuals(&xs);
        let lb = crate::diagnostics::ljung_box(&res[100..], 10);
        assert!(
            lb.p_value > 1e-4,
            "residuals should be near-white, p = {}",
            lb.p_value
        );
    }
}
