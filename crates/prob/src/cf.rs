//! Characteristic-function machinery for SUM result distributions (§5.1).
//!
//! For independent summands X₁..X_N the CF of the sum is the product of
//! the individual CFs — closed form for all the common distributions in
//! [`crate::dist`]. From the product CF this module derives the result
//! distribution two ways, matching the two "CF" rows of Table 2:
//!
//! - **Exact inversion** ([`CfSum::invert_to_histogram`], Gil–Pelaez): a
//!   single oscillatory integral per evaluation point, in contrast to the
//!   (N−1)-fold integration of Cheng et al. \[9\]. Accurate but slow — the
//!   calibration baseline.
//! - **CF approximation** ([`cf_approx_gaussian`], [`cf_approx_mixture`],
//!   [`cf_approx_auto`]): fit the CF of a Gaussian (cumulant matching —
//!   O(1) per tuple) or a Gaussian mixture (least squares on a CF grid)
//!   to the closed-form CF of the sum. Fast with small bounded error.

use crate::complex::Complex64;
use crate::dist::{Dist, Gaussian, GaussianMixture, MixtureComponent};
use crate::histogram::HistogramPdf;
use crate::moments::Cumulants;
use crate::optimize::nelder_mead;

/// The sum of independent random variables, represented by its CF.
#[derive(Debug, Clone)]
pub struct CfSum {
    terms: Vec<Dist>,
    cum: Cumulants,
}

impl CfSum {
    /// Build from the summand distributions.
    pub fn new(terms: Vec<Dist>) -> Self {
        assert!(!terms.is_empty(), "CfSum needs at least one summand");
        let mut cum = Cumulants::default();
        for t in &terms {
            cum = cum.add(&Cumulants::of(t));
        }
        CfSum { terms, cum }
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// φ_sum(t) = Π φᵢ(t).
    pub fn cf(&self, t: f64) -> Complex64 {
        let mut z = Complex64::ONE;
        for d in &self.terms {
            z *= d.cf(t);
            if z.abs() < 1e-300 {
                return Complex64::ZERO;
            }
        }
        z
    }

    /// Exact mean of the sum.
    pub fn mean(&self) -> f64 {
        self.cum.k1
    }

    /// Exact variance of the sum.
    pub fn variance(&self) -> f64 {
        self.cum.k2
    }

    pub fn std_dev(&self) -> f64 {
        self.cum.k2.sqrt()
    }

    /// Cumulants of the sum (additive across independent summands).
    pub fn cumulants(&self) -> Cumulants {
        self.cum
    }

    /// Smallest t beyond which |φ(t)| stays below `eps` (doubling scan).
    fn decay_cutoff(&self, eps: f64) -> f64 {
        // Gaussian-envelope initial guess: |φ| ≈ exp(−σ²t²/2).
        let sd = self.std_dev().max(1e-9);
        let mut t = (2.0 * (1.0 / eps).ln()).sqrt() / sd;
        for _ in 0..60 {
            if self.cf(t).abs() < eps && self.cf(0.5 * t).abs() < eps.sqrt() {
                return t;
            }
            t *= 1.5;
        }
        t
    }

    /// Gil–Pelaez pdf at a single point:
    /// f(x) = (1/π) ∫₀^∞ Re[e^{−itx} φ(t)] dt.
    pub fn pdf_at(&self, x: f64) -> f64 {
        let t_max = self.decay_cutoff(1e-12);
        let n = 2048usize;
        let dt = t_max / n as f64;
        // Midpoint rule keeps us off t = 0 exactly (integrand is finite
        // there, but midpoints also improve oscillatory accuracy).
        let mut acc = 0.0;
        for k in 0..n {
            let t = (k as f64 + 0.5) * dt;
            acc += (self.cf(t) * Complex64::cis(-t * x)).re;
        }
        (acc * dt / std::f64::consts::PI).max(0.0)
    }

    /// Gil–Pelaez cdf at a single point:
    /// F(x) = 1/2 − (1/π) ∫₀^∞ Im[e^{−itx} φ(t)]/t dt.
    pub fn cdf_at(&self, x: f64) -> f64 {
        let t_max = self.decay_cutoff(1e-12);
        let n = 4096usize;
        let dt = t_max / n as f64;
        let mut acc = 0.0;
        for k in 0..n {
            let t = (k as f64 + 0.5) * dt;
            acc += (self.cf(t) * Complex64::cis(-t * x)).im / t;
        }
        (0.5 - acc * dt / std::f64::consts::PI).clamp(0.0, 1.0)
    }

    /// Exact inversion of the whole density onto a histogram covering
    /// mean ± `span_sigmas`·σ with `bins` bins.
    ///
    /// Shares the CF evaluations across all grid points: cost is
    /// O(M·N_terms + M·bins) for M frequency nodes, i.e. a *single*
    /// integral (per the paper's claim) rather than N−1 nested ones.
    pub fn invert_to_histogram(&self, bins: usize, span_sigmas: f64) -> HistogramPdf {
        assert!(bins >= 2);
        let mu = self.mean();
        let sd = self.std_dev().max(1e-9);
        let lo = mu - span_sigmas * sd;
        let hi = mu + span_sigmas * sd;
        let width = (hi - lo) / bins as f64;

        let t_max = self.decay_cutoff(1e-12);
        // Trapezoid spacing chosen against aliasing over the x range.
        let range = hi - lo;
        let dt_alias = 2.0 * std::f64::consts::PI / (1.5 * range);
        let m = ((t_max / dt_alias).ceil() as usize).clamp(256, 16_384);
        let dt = t_max / m as f64;

        // Precompute φ at the frequency nodes (the expensive part).
        let phis: Vec<Complex64> = (0..m)
            .map(|k| {
                let t = (k as f64 + 0.5) * dt;
                self.cf(t)
            })
            .collect();

        let mut masses = Vec::with_capacity(bins);
        for i in 0..bins {
            let x = lo + (i as f64 + 0.5) * width;
            let mut acc = 0.0;
            for (k, phi) in phis.iter().enumerate() {
                let t = (k as f64 + 0.5) * dt;
                acc += (*phi * Complex64::cis(-t * x)).re;
            }
            let pdf = (acc * dt / std::f64::consts::PI).max(0.0);
            masses.push(pdf * width);
        }
        HistogramPdf::from_masses(lo, width, masses)
    }

    /// The paper-literal inversion: evaluate the Gil–Pelaez integral
    /// *independently at every output point* ("the inversion expresses
    /// the exact result distribution using a single integral" — one full
    /// oscillatory integral per point, no sharing of CF evaluations).
    ///
    /// Mathematically identical to [`Self::invert_to_histogram`] but
    /// O(bins × nodes × N_terms) instead of O(nodes × (N_terms + bins));
    /// kept as the faithful "CF (inversion)" contender of Table 2. The
    /// shared-evaluation variant is this implementation's engineering
    /// improvement over the paper and serves as the calibration
    /// reference.
    pub fn invert_pointwise(&self, bins: usize, span_sigmas: f64) -> HistogramPdf {
        assert!(bins >= 2);
        let mu = self.mean();
        let sd = self.std_dev().max(1e-9);
        let lo = mu - span_sigmas * sd;
        let width = 2.0 * span_sigmas * sd / bins as f64;
        let mut masses = Vec::with_capacity(bins);
        for i in 0..bins {
            let x = lo + (i as f64 + 0.5) * width;
            masses.push((self.pdf_at(x) * width).max(0.0));
        }
        HistogramPdf::from_masses(lo, width, masses)
    }
}

/// CF approximation, Gaussian target: matching the CF of N(μ, σ²) to the
/// product CF at first and second order is exactly cumulant matching —
/// near-zero cost ("the computation cost … is almost zero", §5.1).
pub fn cf_approx_gaussian(terms: &[Dist]) -> Gaussian {
    assert!(!terms.is_empty());
    let mut cum = Cumulants::default();
    for t in terms {
        cum = cum.add(&Cumulants::of(t));
    }
    Gaussian::from_mean_var(cum.k1, cum.k2.max(1e-18))
}

/// CF approximation, Gaussian-mixture target: least-squares fit of the
/// mixture CF to the closed-form sum CF on a frequency grid (the paper's
/// "fitting the characteristic functions of the … mixture of Gaussian
/// distributions to the closed form characteristic function of the sum").
pub fn cf_approx_mixture(sum: &CfSum, k: usize) -> GaussianMixture {
    assert!(k >= 1);
    let mu = sum.mean();
    let sd = sum.std_dev().max(1e-9);
    if k == 1 {
        return GaussianMixture::single(Gaussian::new(mu, sd));
    }

    // Frequency grid where the CF carries shape information.
    let m = 24usize;
    let t_hi = 3.0 / sd;
    let nodes: Vec<f64> = (1..=m).map(|j| j as f64 * t_hi / m as f64).collect();
    let targets: Vec<Complex64> = nodes.iter().map(|&t| sum.cf(t)).collect();

    // Parameterization per component i < k: (logit wᵢ, μᵢ, ln σᵢ); the
    // last weight is the remainder. Initialize by splitting along the
    // skew direction.
    let skew = sum.cumulants().skewness();
    let offset = 0.6 * sd * (1.0 + skew.abs().min(2.0));
    let dir = if skew >= 0.0 { 1.0 } else { -1.0 };
    let mut x0 = Vec::with_capacity(3 * k - 1);
    for i in 0..k {
        if i + 1 < k {
            x0.push(0.0); // equal logits
        }
        let frac = if k == 1 {
            0.0
        } else {
            i as f64 / (k as f64 - 1.0) - 0.5
        };
        x0.push(mu + dir * 2.0 * frac * offset);
        x0.push((0.7 * sd).ln());
    }

    let unpack = |x: &[f64]| -> GaussianMixture {
        let mut comps = Vec::with_capacity(k);
        let mut idx = 0usize;
        let mut logits = Vec::with_capacity(k);
        let mut params = Vec::with_capacity(k);
        for i in 0..k {
            if i + 1 < k {
                logits.push(x[idx]);
                idx += 1;
            }
            let m_i = x[idx];
            let s_i = x[idx + 1].exp().clamp(1e-6 * sd, 10.0 * sd);
            idx += 2;
            params.push((m_i, s_i));
        }
        // Softmax over [logits…, 0].
        logits.push(0.0);
        let max_l = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max_l).exp()).collect();
        let total: f64 = exps.iter().sum();
        for (i, (m_i, s_i)) in params.into_iter().enumerate() {
            comps.push(MixtureComponent {
                weight: exps[i] / total,
                dist: Gaussian::new(m_i, s_i),
            });
        }
        GaussianMixture::new(comps)
    };

    let objective = |x: &[f64]| -> f64 {
        let mix = unpack(x);
        nodes
            .iter()
            .zip(targets.iter())
            .map(|(&t, &tgt)| (mix.cf(t) - tgt).norm_sqr())
            .sum()
    };

    let res = nelder_mead(objective, &x0, 0.3, 1e-12, 4000);
    unpack(&res.x)
}

/// Automatic CF approximation: Gaussian when the sum's shape statistics
/// say "normal enough" (the CLT has effectively taken over); otherwise a
/// 2-component mixture CF fit.
pub fn cf_approx_auto(sum: &CfSum, skew_threshold: f64, kurt_threshold: f64) -> Dist {
    let c = sum.cumulants();
    if c.skewness().abs() <= skew_threshold && c.excess_kurtosis().abs() <= kurt_threshold {
        Dist::Gaussian(Gaussian::from_mean_var(c.k1, c.k2.max(1e-18)))
    } else {
        Dist::Mixture(cf_approx_mixture(sum, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ContinuousDist;
    use crate::dist::Exponential;
    use crate::metrics::tv_distance_grid;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn product_cf_matches_gaussian_closed_form() {
        let sum = CfSum::new(vec![Dist::gaussian(1.0, 1.0), Dist::gaussian(2.0, 2.0)]);
        let exact = Gaussian::new(3.0, 5.0f64.sqrt());
        for &t in &[0.0, 0.3, 1.0] {
            let d = (sum.cf(t) - exact.cf(t)).abs();
            close(d, 0.0, 1e-12);
        }
    }

    #[test]
    fn inversion_recovers_gaussian_sum() {
        let terms: Vec<Dist> = (0..10)
            .map(|i| Dist::gaussian(0.5 * i as f64, 1.0))
            .collect();
        let sum = CfSum::new(terms);
        let hist = sum.invert_to_histogram(256, 8.0);
        close(hist.mean(), sum.mean(), 0.02);
        close(hist.variance(), sum.variance(), 0.15);
        // Pointwise density agreement with the closed form.
        let exact = Gaussian::from_mean_var(sum.mean(), sum.variance());
        for &x in &[sum.mean() - 3.0, sum.mean(), sum.mean() + 4.0] {
            close(hist.pdf(x), exact.pdf(x), 2e-3);
        }
    }

    #[test]
    fn inversion_recovers_skewed_sum() {
        // Sum of 5 exponentials(rate 1) = Gamma(5, 1): verifiably skewed.
        let terms: Vec<Dist> = (0..5)
            .map(|_| Dist::Exponential(Exponential::new(1.0)))
            .collect();
        let sum = CfSum::new(terms);
        let hist = sum.invert_to_histogram(512, 10.0);
        let exact = crate::dist::GammaDist::new(5.0, 1.0);
        close(hist.mean(), 5.0, 0.05);
        for &x in &[2.0, 5.0, 9.0] {
            close(hist.pdf(x), exact.pdf(x), 3e-3);
        }
    }

    #[test]
    fn pointwise_and_shared_inversion_agree() {
        let sum = CfSum::new(vec![
            Dist::gaussian(1.0, 1.0),
            Dist::Exponential(Exponential::new(0.8)),
        ]);
        let shared = sum.invert_to_histogram(128, 8.0);
        let pointwise = sum.invert_pointwise(128, 8.0);
        let tv = shared.tv_distance(&pointwise);
        assert!(tv < 0.01, "two inversion paths differ: TV = {tv}");
    }

    #[test]
    fn pdf_at_matches_inversion_grid() {
        let sum = CfSum::new(vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(0.0, 1.0)]);
        let exact = Gaussian::new(0.0, 2.0f64.sqrt());
        for &x in &[-2.0, 0.0, 1.5] {
            close(sum.pdf_at(x), exact.pdf(x), 1e-6);
        }
    }

    #[test]
    fn cdf_at_gil_pelaez() {
        let sum = CfSum::new(vec![Dist::gaussian(1.0, 1.0), Dist::gaussian(1.0, 1.0)]);
        let exact = Gaussian::new(2.0, 2.0f64.sqrt());
        for &x in &[0.0, 2.0, 4.0] {
            close(sum.cdf_at(x), exact.cdf(x), 1e-4);
        }
    }

    #[test]
    fn gaussian_approx_is_cumulant_matching() {
        let terms: Vec<Dist> = vec![
            Dist::Exponential(Exponential::new(0.5)),
            Dist::gaussian(1.0, 2.0),
            Dist::uniform(0.0, 4.0),
        ];
        let g = cf_approx_gaussian(&terms);
        let mean: f64 = terms.iter().map(|d| d.mean()).sum();
        let var: f64 = terms.iter().map(|d| d.variance()).sum();
        close(g.mean(), mean, 1e-12);
        close(g.variance(), var, 1e-12);
    }

    #[test]
    fn mixture_cf_fit_beats_gaussian_on_bimodal_sum() {
        // One strongly bimodal summand plus small noise: the sum stays
        // bimodal, a single Gaussian cannot represent it.
        let bimodal = Dist::Mixture(GaussianMixture::from_triples(&[
            (0.5, -6.0, 0.6),
            (0.5, 6.0, 0.6),
        ]));
        let noise = Dist::gaussian(0.0, 0.5);
        let sum = CfSum::new(vec![bimodal, noise]);
        let exact = sum.invert_to_histogram(512, 4.0);

        let gauss = Dist::Gaussian(cf_approx_gaussian(&[
            Dist::Mixture(GaussianMixture::from_triples(&[
                (0.5, -6.0, 0.6),
                (0.5, 6.0, 0.6),
            ])),
            Dist::gaussian(0.0, 0.5),
        ]));
        let mix = Dist::Mixture(cf_approx_mixture(&sum, 2));

        let err_gauss = tv_distance_grid(&gauss, &exact);
        let err_mix = tv_distance_grid(&mix, &exact);
        assert!(
            err_mix < err_gauss * 0.5,
            "mixture fit ({err_mix:.4}) should beat Gaussian ({err_gauss:.4})"
        );
        assert!(err_mix < 0.08, "mixture TV error too large: {err_mix:.4}");
    }

    #[test]
    fn auto_approx_picks_gaussian_for_many_iid_terms() {
        let terms: Vec<Dist> = (0..100).map(|_| Dist::uniform(0.0, 1.0)).collect();
        let sum = CfSum::new(terms);
        match cf_approx_auto(&sum, 0.3, 1.0) {
            Dist::Gaussian(_) => {}
            other => panic!("expected Gaussian for CLT regime, got {other:?}"),
        }
    }

    #[test]
    fn auto_approx_picks_mixture_for_bimodal() {
        let bimodal = Dist::Mixture(GaussianMixture::from_triples(&[
            (0.5, -8.0, 0.5),
            (0.5, 8.0, 0.5),
        ]));
        let sum = CfSum::new(vec![bimodal]);
        match cf_approx_auto(&sum, 0.3, 1.0) {
            Dist::Mixture(_) => {}
            other => panic!("expected mixture for bimodal sum, got {other:?}"),
        }
    }
}
