//! Streaming moment accumulators (Welford-style) up to fourth order.
//!
//! Used by estimators, the Monte-Carlo ground-truth harnesses, and the
//! moment-data averaging path in the radar simulator.

/// Numerically-stable running mean/variance/skewness/kurtosis.
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl RunningMoments {
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Incorporate a batch.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let d3 = d2 * delta;
        let d4 = d2 * d2;

        let m4 = self.m4
            + other.m4
            + d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + d3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let mean = self.mean + delta * nb / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n−1).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population skewness.
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n.sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Excess kurtosis (0 for a Gaussian).
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Third central moment.
    pub fn central_moment3(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Fourth central moment.
    pub fn central_moment4(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m4 / self.n as f64
        }
    }
}

/// First four cumulants (κ₁..κ₄) of a distribution, used by the
/// characteristic-function approximation: cumulants of independent sums
/// add, so per-tuple accumulation is O(1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cumulants {
    pub k1: f64,
    pub k2: f64,
    pub k3: f64,
    pub k4: f64,
}

impl Cumulants {
    /// Extract cumulants from any distribution.
    pub fn of<D: crate::dist::ContinuousDist + ?Sized>(d: &D) -> Cumulants {
        Cumulants {
            k1: d.mean(),
            k2: d.variance(),
            k3: d.cumulant3(),
            k4: d.cumulant4(),
        }
    }

    /// Cumulants of the sum of independent variables: component-wise add.
    pub fn add(&self, other: &Cumulants) -> Cumulants {
        Cumulants {
            k1: self.k1 + other.k1,
            k2: self.k2 + other.k2,
            k3: self.k3 + other.k3,
            k4: self.k4 + other.k4,
        }
    }

    /// Skewness implied by the cumulants.
    pub fn skewness(&self) -> f64 {
        if self.k2 <= 0.0 {
            0.0
        } else {
            self.k3 / self.k2.powf(1.5)
        }
    }

    /// Excess kurtosis implied by the cumulants.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.k2 <= 0.0 {
            0.0
        } else {
            self.k4 / (self.k2 * self.k2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Exponential, Gaussian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rm = RunningMoments::new();
        rm.extend(xs.iter().copied());
        close(rm.mean(), 5.0, 1e-12);
        close(rm.variance(), 4.0, 1e-12);
        close(rm.std_dev(), 2.0, 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.77).sin() * 3.0 + 1.0)
            .collect();
        let mut all = RunningMoments::new();
        all.extend(xs.iter().copied());
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend(xs[..20].iter().copied());
        b.extend(xs[20..].iter().copied());
        a.merge(&b);
        close(a.mean(), all.mean(), 1e-12);
        close(a.variance(), all.variance(), 1e-12);
        close(a.central_moment3(), all.central_moment3(), 1e-10);
        close(a.central_moment4(), all.central_moment4(), 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&RunningMoments::new());
        close(a.mean(), before.mean(), 0.0);
        let mut e = RunningMoments::new();
        e.merge(&before);
        close(e.variance(), before.variance(), 0.0);
    }

    #[test]
    fn gaussian_samples_have_zero_skew_kurtosis() {
        let g = Gaussian::new(0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut rm = RunningMoments::new();
        for _ in 0..50_000 {
            rm.push(g.sample(&mut rng));
        }
        close(rm.skewness(), 0.0, 0.05);
        close(rm.excess_kurtosis(), 0.0, 0.12);
    }

    #[test]
    fn exponential_skewness_is_two() {
        let e = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut rm = RunningMoments::new();
        for _ in 0..200_000 {
            rm.push(e.sample(&mut rng));
        }
        close(rm.skewness(), 2.0, 0.1);
    }

    #[test]
    fn cumulants_add_for_sums() {
        let a = Cumulants::of(&Exponential::new(2.0));
        let b = Cumulants::of(&Gaussian::new(1.0, 1.0));
        let s = a.add(&b);
        close(s.k1, 0.5 + 1.0, 1e-12);
        close(s.k2, 0.25 + 1.0, 1e-12);
        close(s.k3, 2.0 / 8.0, 1e-12); // Gaussian κ3 = 0
    }

    #[test]
    fn cumulant_shape_stats() {
        let c = Cumulants::of(&Exponential::new(1.0));
        close(c.skewness(), 2.0, 1e-9);
        close(c.excess_kurtosis(), 6.0, 1e-9);
    }
}
