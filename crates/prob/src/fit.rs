//! Fitting parametric distributions to weighted samples (§4.3).
//!
//! Beyond the closed-form Gaussian KL fit (in [`crate::samples`]), the
//! paper calls for "more flexible distributions … a mixture of Gaussians
//! may be appropriate … Selecting the number of mixture components …
//! can be done using standard model selection techniques such as Akaike
//! Information Criterion (AIC) and the Bayesian Information Criterion
//! (BIC)". This module implements weighted EM for 1-D Gaussian mixtures
//! and AIC/BIC model selection over the component count.

use crate::dist::{Gaussian, GaussianMixture, MixtureComponent};
use crate::samples::WeightedSamples;

/// Configuration for the weighted EM fitter.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
    /// Floor on component variances (prevents singular collapse).
    pub var_floor: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iters: 200,
            tol: 1e-8,
            var_floor: 1e-9,
        }
    }
}

/// Result of one EM fit.
#[derive(Debug, Clone)]
pub struct GmmFit {
    pub mixture: GaussianMixture,
    /// Weighted log-likelihood at convergence (scaled by sample count).
    pub log_likelihood: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Fit a k-component Gaussian mixture to weighted samples with EM.
///
/// The sample weights enter the E-step responsibilities multiplicatively,
/// so the particle filter's weighted clouds fit directly without
/// resampling first. Returns `None` if the data cannot support `k`
/// components (fewer distinct values than components).
pub fn fit_gmm_weighted(samples: &WeightedSamples, k: usize, cfg: &EmConfig) -> Option<GmmFit> {
    assert!(k >= 1);
    let n = samples.len();
    if n < k {
        return None;
    }
    // Count distinct values cheaply.
    {
        let mut vals: Vec<f64> = samples.values().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        if vals.len() < k {
            return None;
        }
    }

    // Init: means at spread quantiles, shared variance from the data.
    let global_var = samples.variance().max(cfg.var_floor);
    let mut means: Vec<f64> = (0..k)
        .map(|i| samples.quantile((i as f64 + 0.5) / k as f64))
        .collect();
    let mut vars = vec![(global_var / k as f64).max(cfg.var_floor); k];
    let mut weights = vec![1.0 / k as f64; k];

    let scale = n as f64; // treat normalized weights as fractional counts of n
    let mut prev_ll = f64::NEG_INFINITY;
    let mut resp = vec![0.0f64; n * k];
    let mut iterations = 0;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // E-step: responsibilities r_{ij} ∝ w_j · N(x_i; μ_j, σ_j²).
        let comps: Vec<Gaussian> = means
            .iter()
            .zip(vars.iter())
            .map(|(&m, &v)| Gaussian::from_mean_var(m, v.max(cfg.var_floor)))
            .collect();
        let mut ll = 0.0;
        for (i, (x, wi)) in samples.iter().enumerate() {
            // log-sum-exp over components for stability.
            let mut logs = [f64::NEG_INFINITY; 32];
            let logs = &mut logs[..k.min(32)];
            let mut heap_logs;
            let logs: &mut [f64] = if k <= 32 {
                logs
            } else {
                heap_logs = vec![f64::NEG_INFINITY; k];
                &mut heap_logs
            };
            for j in 0..k {
                logs[j] = weights[j].max(1e-300).ln() + comps[j].ln_pdf(x);
            }
            let max_l = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let denom: f64 = logs.iter().map(|&l| (l - max_l).exp()).sum();
            ll += wi * scale * (max_l + denom.ln());
            for j in 0..k {
                resp[i * k + j] = wi * ((logs[j] - max_l).exp() / denom);
            }
        }

        // M-step.
        for j in 0..k {
            let rj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
            if rj <= 1e-300 {
                // Dead component: re-seed at a random-ish quantile.
                means[j] = samples.quantile(((j as f64) + 0.37) / k as f64);
                vars[j] = global_var;
                weights[j] = 1e-6;
                continue;
            }
            let mu: f64 = (0..n)
                .map(|i| resp[i * k + j] * samples.values()[i])
                .sum::<f64>()
                / rj;
            let var: f64 = (0..n)
                .map(|i| {
                    let d = samples.values()[i] - mu;
                    resp[i * k + j] * d * d
                })
                .sum::<f64>()
                / rj;
            means[j] = mu;
            vars[j] = var.max(cfg.var_floor);
            weights[j] = rj;
        }
        let wsum: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= wsum;
        }

        if (ll - prev_ll).abs() <= cfg.tol * (1.0 + ll.abs()) {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;
    }

    let mixture = GaussianMixture::new(
        (0..k)
            .map(|j| MixtureComponent {
                weight: weights[j],
                dist: Gaussian::from_mean_var(means[j], vars[j].max(cfg.var_floor)),
            })
            .collect(),
    );
    Some(GmmFit {
        mixture,
        log_likelihood: prev_ll,
        iterations,
    })
}

/// Model-selection criterion for choosing the component count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSelection {
    /// AIC = 2p − 2·lnL.
    Aic,
    /// BIC = p·ln n − 2·lnL (penalizes harder; the paper names both).
    Bic,
}

impl ModelSelection {
    fn score(&self, ll: f64, params: usize, n: usize) -> f64 {
        match self {
            ModelSelection::Aic => 2.0 * params as f64 - 2.0 * ll,
            ModelSelection::Bic => params as f64 * (n as f64).ln() - 2.0 * ll,
        }
    }
}

/// Outcome of model selection over k = 1..=max_k.
#[derive(Debug, Clone)]
pub struct GmmSelection {
    /// The winning mixture.
    pub mixture: GaussianMixture,
    /// Chosen component count.
    pub k: usize,
    /// (k, criterion score) for every candidate that could be fitted.
    pub scores: Vec<(usize, f64)>,
}

/// Fit mixtures with 1..=max_k components and pick the count minimizing
/// the chosen criterion — the paper's §4.3 procedure for deciding how many
/// "humps" a tuple-level distribution needs.
pub fn select_gmm(
    samples: &WeightedSamples,
    max_k: usize,
    criterion: ModelSelection,
    cfg: &EmConfig,
) -> GmmSelection {
    assert!(max_k >= 1);
    let n = samples.len();
    let mut best: Option<(f64, usize, GaussianMixture)> = None;
    let mut scores = Vec::new();
    for k in 1..=max_k {
        let Some(fit) = fit_gmm_weighted(samples, k, cfg) else {
            continue;
        };
        let params = 3 * k - 1; // k means, k variances, k−1 free weights
        let score = criterion.score(fit.log_likelihood, params, n);
        scores.push((k, score));
        let better = match &best {
            None => true,
            Some((s, _, _)) => score < *s,
        };
        if better {
            best = Some((score, k, fit.mixture));
        }
    }
    let (_, k, mixture) = best.expect("k=1 fit always succeeds for non-empty samples");
    GmmSelection { mixture, k, scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    fn draw(mix: &GaussianMixture, n: usize, seed: u64) -> WeightedSamples {
        let mut rng = StdRng::seed_from_u64(seed);
        WeightedSamples::unweighted((0..n).map(|_| mix.sample(&mut rng)).collect())
    }

    #[test]
    fn single_component_matches_moment_fit() {
        let truth = GaussianMixture::from_triples(&[(1.0, 2.0, 1.5)]);
        let s = draw(&truth, 3000, 1);
        let fit = fit_gmm_weighted(&s, 1, &EmConfig::default()).unwrap();
        close(fit.mixture.mean(), s.mean(), 1e-6);
        close(fit.mixture.variance(), s.variance(), 1e-5);
    }

    #[test]
    fn recovers_well_separated_bimodal() {
        let truth = GaussianMixture::from_triples(&[(0.4, -5.0, 0.8), (0.6, 5.0, 1.0)]);
        let s = draw(&truth, 4000, 2);
        let fit = fit_gmm_weighted(&s, 2, &EmConfig::default()).unwrap();
        let mut comps: Vec<_> = fit.mixture.components().to_vec();
        comps.sort_by(|a, b| a.dist.mean().partial_cmp(&b.dist.mean()).unwrap());
        close(comps[0].dist.mean(), -5.0, 0.15);
        close(comps[1].dist.mean(), 5.0, 0.15);
        close(comps[0].weight, 0.4, 0.03);
    }

    #[test]
    fn weighted_samples_shift_the_fit() {
        // Same values, weights concentrated on the right cluster.
        let xs: Vec<f64> = vec![-5.0, -4.9, -5.1, 5.0, 4.9, 5.1];
        let ws = vec![0.01, 0.01, 0.01, 1.0, 1.0, 1.0];
        let s = WeightedSamples::new(xs, ws);
        let fit = fit_gmm_weighted(&s, 1, &EmConfig::default()).unwrap();
        assert!(fit.mixture.mean() > 4.0, "mean {}", fit.mixture.mean());
    }

    #[test]
    fn returns_none_when_insufficient_distinct_values() {
        let s = WeightedSamples::unweighted(vec![1.0, 1.0, 1.0]);
        assert!(fit_gmm_weighted(&s, 2, &EmConfig::default()).is_none());
        assert!(fit_gmm_weighted(&s, 1, &EmConfig::default()).is_some());
    }

    #[test]
    fn bic_picks_one_component_for_unimodal() {
        let truth = GaussianMixture::from_triples(&[(1.0, 0.0, 1.0)]);
        let s = draw(&truth, 1500, 3);
        let sel = select_gmm(&s, 3, ModelSelection::Bic, &EmConfig::default());
        assert_eq!(sel.k, 1, "scores: {:?}", sel.scores);
    }

    #[test]
    fn bic_picks_two_components_for_bimodal() {
        // The §4.3 scenario: object may have moved shelves → two humps.
        let truth = GaussianMixture::from_triples(&[(0.5, -4.0, 0.5), (0.5, 4.0, 0.5)]);
        let s = draw(&truth, 1500, 4);
        let sel = select_gmm(&s, 3, ModelSelection::Bic, &EmConfig::default());
        assert_eq!(sel.k, 2, "scores: {:?}", sel.scores);
    }

    #[test]
    fn aic_never_scores_worse_fit_better() {
        let truth = GaussianMixture::from_triples(&[(0.5, -3.0, 0.7), (0.5, 3.0, 0.7)]);
        let s = draw(&truth, 1000, 5);
        let sel = select_gmm(&s, 3, ModelSelection::Aic, &EmConfig::default());
        // k = 2 must beat k = 1 on AIC for clearly bimodal data.
        let score = |k: usize| sel.scores.iter().find(|(kk, _)| *kk == k).map(|(_, s)| *s);
        if let (Some(s1), Some(s2)) = (score(1), score(2)) {
            assert!(s2 < s1, "AIC(2)={s2} should beat AIC(1)={s1}");
        }
    }

    #[test]
    fn em_is_deterministic_for_fixed_input() {
        let truth = GaussianMixture::from_triples(&[(0.5, -2.0, 0.5), (0.5, 2.0, 0.5)]);
        let s = draw(&truth, 500, 6);
        let a = fit_gmm_weighted(&s, 2, &EmConfig::default()).unwrap();
        let b = fit_gmm_weighted(&s, 2, &EmConfig::default()).unwrap();
        close(a.log_likelihood, b.log_likelihood, 0.0);
    }
}
