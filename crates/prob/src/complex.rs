//! Minimal complex arithmetic for characteristic-function work.
//!
//! We deliberately avoid an external num-complex dependency; the engine
//! only needs the handful of operations used by CF products, Gil–Pelaez
//! inversion, and complex powers for gamma-family CFs.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Purely real complex number.
    #[inline]
    pub fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// e^{iθ} on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Squared modulus |z|².
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus |z|.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in (−π, π].
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential e^z.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        Complex64 {
            re: r * c,
            im: r * s,
        }
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex64 {
            re: self.abs().ln(),
            im: self.arg(),
        }
    }

    /// Principal power z^p for real exponent p.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self == Complex64::ZERO {
            return if p == 0.0 {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
        }
        (self.ln() * p).exp()
    }

    /// Multiplicative inverse 1/z.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Complex division *is* multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {}+{}i, got {}+{}i",
            b.re,
            b.im,
            a.re,
            a.im
        );
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        close(a + b, Complex64::new(4.0, 1.0), 1e-15);
        close(a - b, Complex64::new(-2.0, 3.0), 1e-15);
        close(a * b, Complex64::new(5.0, 5.0), 1e-15);
        close((a / b) * b, a, 1e-14);
    }

    #[test]
    fn i_squared_is_minus_one() {
        close(Complex64::I * Complex64::I, Complex64::real(-1.0), 1e-15);
    }

    #[test]
    fn exp_and_ln_roundtrip() {
        let z = Complex64::new(0.3, -1.2);
        close(z.exp().ln(), z, 1e-13);
        // Euler: e^{iπ} = −1
        close(
            Complex64::new(0.0, std::f64::consts::PI).exp(),
            Complex64::real(-1.0),
            1e-14,
        );
    }

    #[test]
    fn cis_matches_exp() {
        for &t in &[0.0, 0.5, -2.0, 3.1] {
            close(Complex64::cis(t), Complex64::new(0.0, t).exp(), 1e-14);
        }
    }

    #[test]
    fn powf_of_real_matches_scalar() {
        let z = Complex64::real(2.0);
        close(z.powf(10.0), Complex64::real(1024.0), 1e-10);
        // (1 + i)^2 = 2i
        close(
            Complex64::new(1.0, 1.0).powf(2.0),
            Complex64::new(0.0, 2.0),
            1e-13,
        );
    }

    #[test]
    fn inv_times_self_is_one() {
        let z = Complex64::new(-0.7, 2.4);
        close(z * z.inv(), Complex64::ONE, 1e-14);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        close(z * z.conj(), Complex64::real(25.0), 1e-12);
    }
}
