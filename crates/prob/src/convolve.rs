//! Exact and approximate sum rules for independent random variables.
//!
//! "For many typical database operations such as aggregation … we can
//! devise efficient algorithms for exact derivation of result
//! distributions" (§1). This module holds the closed-form fast paths the
//! aggregation operator tries before falling back to CF machinery:
//!
//! - Gaussian ⊕ Gaussian (and any number of Gaussians) — exact.
//! - Gamma ⊕ Gamma with a common scale — exact.
//! - mixture ⊕ mixture — exact, component-product expansion with a cap.
//! - CLT approximation — "the computation cost … is almost zero" (§5.1).

use crate::dist::{Dist, GammaDist, Gaussian, GaussianMixture, MixtureComponent};
use crate::moments::Cumulants;

/// Maximum number of mixture components an exact mixture convolution may
/// produce before we refuse (caller should fall back to CF approximation).
pub const MIXTURE_EXPANSION_CAP: usize = 64;

/// Try to derive the exact distribution of ΣXᵢ in closed form.
///
/// Returns `None` when no closed form is known (or the mixture expansion
/// would exceed [`MIXTURE_EXPANSION_CAP`]); callers then choose CF
/// inversion, CF approximation, or sampling.
pub fn exact_sum(terms: &[Dist]) -> Option<Dist> {
    if terms.is_empty() {
        return None;
    }
    if terms.len() == 1 {
        return Some(terms[0].clone());
    }

    // All-Gaussian fast path.
    if terms.iter().all(|d| matches!(d, Dist::Gaussian(_))) {
        let gs: Vec<Gaussian> = terms
            .iter()
            .map(|d| match d {
                Dist::Gaussian(g) => *g,
                _ => unreachable!(),
            })
            .collect();
        return Gaussian::sum_of(&gs).map(Dist::Gaussian);
    }

    // All-Gamma with common scale: shapes add.
    if terms.iter().all(|d| matches!(d, Dist::Gamma(_))) {
        let gammas: Vec<&GammaDist> = terms
            .iter()
            .map(|d| match d {
                Dist::Gamma(g) => g,
                _ => unreachable!(),
            })
            .collect();
        let scale = gammas[0].scale();
        if gammas
            .iter()
            .all(|g| (g.scale() - scale).abs() <= 1e-12 * scale)
        {
            let shape: f64 = gammas.iter().map(|g| g.shape()).sum();
            return Some(Dist::Gamma(GammaDist::new(shape, scale)));
        }
        return None;
    }

    // Gaussian/mixture terms: exact convolution is a mixture over the
    // cross product of components. Only worthwhile while small.
    if terms
        .iter()
        .all(|d| matches!(d, Dist::Gaussian(_) | Dist::Mixture(_)))
    {
        let mut acc: Vec<(f64, f64, f64)> = vec![(1.0, 0.0, 0.0)]; // (w, μ, σ²)
        for d in terms {
            let comps: Vec<(f64, f64, f64)> = match d {
                Dist::Gaussian(g) => vec![(1.0, g.mean(), g.variance())],
                Dist::Mixture(m) => m
                    .components()
                    .iter()
                    .map(|c| (c.weight, c.dist.mean(), c.dist.variance()))
                    .collect(),
                _ => unreachable!(),
            };
            if acc.len() * comps.len() > MIXTURE_EXPANSION_CAP {
                return None;
            }
            let mut next = Vec::with_capacity(acc.len() * comps.len());
            for &(wa, ma, va) in &acc {
                for &(wb, mb, vb) in &comps {
                    next.push((wa * wb, ma + mb, va + vb));
                }
            }
            acc = next;
        }
        let comps = acc
            .into_iter()
            .map(|(w, m, v)| MixtureComponent {
                weight: w,
                dist: Gaussian::from_mean_var(m, v.max(1e-18)),
            })
            .collect();
        return Some(Dist::Mixture(GaussianMixture::new(comps)));
    }

    None
}

/// Central-Limit-Theorem approximation of ΣXᵢ for independent terms:
/// N(Σμᵢ, Σσᵢ²). Two additions per tuple — the cheapest strategy, valid
/// "when the number of the effective summands is fairly large" (§5.1).
pub fn clt_sum(terms: &[Dist]) -> Gaussian {
    assert!(!terms.is_empty());
    let mut cum = Cumulants::default();
    for t in terms {
        cum = cum.add(&Cumulants::of(t));
    }
    Gaussian::from_mean_var(cum.k1, cum.k2.max(1e-18))
}

/// Berry–Esseen-style adequacy heuristic for the CLT path: the ratio of
/// summed third absolute moments to the 3/2 power of total variance.
/// Small values ⇒ the Gaussian approximation is trustworthy.
pub fn clt_adequacy(terms: &[Dist]) -> f64 {
    let var: f64 = terms.iter().map(|d| d.variance()).sum();
    if var <= 0.0 {
        return f64::INFINITY;
    }
    // Use |κ₃| as a proxy for the absolute third moment (exact for
    // symmetric distributions up to a constant; fine as a heuristic).
    let third: f64 = terms.iter().map(|d| d.cumulant3().abs()).sum();
    third / var.powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::tv_distance_grid_dists;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn gaussian_sum_exact() {
        let terms = vec![Dist::gaussian(1.0, 1.0), Dist::gaussian(2.0, 2.0)];
        match exact_sum(&terms).unwrap() {
            Dist::Gaussian(g) => {
                close(g.mean(), 3.0, 1e-14);
                close(g.variance(), 5.0, 1e-14);
            }
            other => panic!("expected Gaussian, got {other:?}"),
        }
    }

    #[test]
    fn gamma_common_scale_sums_shapes() {
        let terms = vec![
            Dist::Gamma(GammaDist::new(2.0, 1.5)),
            Dist::Gamma(GammaDist::new(3.0, 1.5)),
        ];
        match exact_sum(&terms).unwrap() {
            Dist::Gamma(g) => {
                close(g.shape(), 5.0, 1e-12);
                close(g.scale(), 1.5, 1e-12);
            }
            other => panic!("expected Gamma, got {other:?}"),
        }
        // Mismatched scales: no closed form.
        let mixed = vec![
            Dist::Gamma(GammaDist::new(2.0, 1.0)),
            Dist::Gamma(GammaDist::new(2.0, 2.0)),
        ];
        assert!(exact_sum(&mixed).is_none());
    }

    #[test]
    fn mixture_convolution_expands_components() {
        let m = Dist::Mixture(GaussianMixture::from_triples(&[
            (0.5, -1.0, 0.5),
            (0.5, 1.0, 0.5),
        ]));
        let g = Dist::gaussian(10.0, 1.0);
        match exact_sum(&[m, g]).unwrap() {
            Dist::Mixture(out) => {
                assert_eq!(out.num_components(), 2);
                close(out.mean(), 10.0, 1e-12);
            }
            other => panic!("expected mixture, got {other:?}"),
        }
    }

    #[test]
    fn mixture_expansion_respects_cap() {
        // 2^7 = 128 > 64 ⇒ refuse.
        let bi = Dist::Mixture(GaussianMixture::from_triples(&[
            (0.5, -1.0, 0.3),
            (0.5, 1.0, 0.3),
        ]));
        let terms: Vec<Dist> = (0..7).map(|_| bi.clone()).collect();
        assert!(exact_sum(&terms).is_none());
        // 2^5 = 32 ≤ 64 ⇒ fine.
        let ok: Vec<Dist> = (0..5).map(|_| bi.clone()).collect();
        assert!(exact_sum(&ok).is_some());
    }

    #[test]
    fn mixture_convolution_matches_cf_inversion() {
        let m1 = Dist::Mixture(GaussianMixture::from_triples(&[
            (0.3, -2.0, 0.6),
            (0.7, 1.0, 0.9),
        ]));
        let m2 = Dist::gaussian(0.5, 1.2);
        let exact = exact_sum(&[m1.clone(), m2.clone()]).unwrap();
        let sum = crate::cf::CfSum::new(vec![m1, m2]);
        let hist = sum.invert_to_histogram(512, 8.0);
        let tv = crate::metrics::tv_distance_grid(&exact, &hist);
        assert!(tv < 0.01, "exact vs inversion TV = {tv}");
    }

    #[test]
    fn clt_matches_exact_moments() {
        let terms: Vec<Dist> = (0..30).map(|_| Dist::uniform(0.0, 1.0)).collect();
        let g = clt_sum(&terms);
        close(g.mean(), 15.0, 1e-12);
        close(g.variance(), 30.0 / 12.0, 1e-12);
    }

    #[test]
    fn clt_close_to_truth_for_many_uniforms() {
        // Irwin–Hall(30) is extremely close to its CLT Gaussian.
        let terms: Vec<Dist> = (0..30).map(|_| Dist::uniform(0.0, 1.0)).collect();
        let g = Dist::Gaussian(clt_sum(&terms));
        let sum = crate::cf::CfSum::new(terms);
        let hist = sum.invert_to_histogram(512, 8.0);
        let tv = crate::metrics::tv_distance_grid(&g, &hist);
        assert!(tv < 0.01, "CLT vs exact TV = {tv}");
    }

    #[test]
    fn clt_adequacy_decreases_with_n() {
        let few: Vec<Dist> = (0..3)
            .map(|_| Dist::Exponential(crate::dist::Exponential::new(1.0)))
            .collect();
        let many: Vec<Dist> = (0..100)
            .map(|_| Dist::Exponential(crate::dist::Exponential::new(1.0)))
            .collect();
        assert!(clt_adequacy(&many) < clt_adequacy(&few));
    }

    #[test]
    fn empty_and_singleton_behaviour() {
        assert!(exact_sum(&[]).is_none());
        let single = vec![Dist::gaussian(1.0, 1.0)];
        let out = exact_sum(&single).unwrap();
        close(out.mean(), 1.0, 1e-14);
    }

    #[test]
    fn clt_vs_exact_tv_shrinks_with_n() {
        let make = |n: usize| -> f64 {
            let terms: Vec<Dist> = (0..n)
                .map(|_| Dist::Exponential(crate::dist::Exponential::new(1.0)))
                .collect();
            let g = Dist::Gaussian(clt_sum(&terms));
            let exact = Dist::Gamma(GammaDist::new(n as f64, 1.0));
            tv_distance_grid_dists(&g, &exact)
        };
        let (tv5, tv50) = (make(5), make(50));
        assert!(tv50 < tv5, "tv50={tv50} should beat tv5={tv5}");
        assert!(tv50 < 0.06);
    }
}
