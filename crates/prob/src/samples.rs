//! Weighted sample sets — the sample-based tuple-level distributions of
//! §4.3.
//!
//! A particle filter's posterior for one hidden variable is a list of
//! value–weight pairs {(xᵢ, wᵢ)}. This module provides the moment,
//! resampling, and **KL-minimizing parametric conversion** machinery the
//! paper uses to turn such lists into compact tuple-level pdfs:
//! minimizing KL(p̂‖q) over Gaussian q yields exactly the weighted mean and
//! weighted variance (the closed form derived in §4.3), computable in two
//! scans.

use crate::dist::Gaussian;
use rand::{Rng, RngCore};

/// Shared validation for the `from_normalized` decode hooks: every
/// weight finite and non-negative, and the sum within `1e-9` of unity.
/// One definition so the accept/reject behavior of samples, histograms,
/// and mixtures cannot silently diverge.
pub(crate) fn weights_are_normalized(ws: impl IntoIterator<Item = f64>) -> bool {
    let mut total = 0.0;
    for w in ws {
        if !w.is_finite() || w < 0.0 {
            return false;
        }
        total += w;
    }
    (total - 1.0).abs() <= 1e-9
}

/// A normalized set of weighted scalar samples.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSamples {
    xs: Vec<f64>,
    /// Normalized weights (sum = 1).
    ws: Vec<f64>,
}

impl WeightedSamples {
    /// Build from parallel value/weight vectors; weights are normalized.
    pub fn new(xs: Vec<f64>, ws: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ws.len(), "values and weights must align");
        assert!(!xs.is_empty(), "need at least one sample");
        let total: f64 = ws.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must have positive finite sum, got {total}"
        );
        let ws = ws.into_iter().map(|w| w / total).collect();
        WeightedSamples { xs, ws }
    }

    /// Equally-weighted samples.
    pub fn unweighted(xs: Vec<f64>) -> Self {
        let n = xs.len();
        assert!(n > 0);
        let w = 1.0 / n as f64;
        WeightedSamples { xs, ws: vec![w; n] }
    }

    /// Rebuild from weights that are **already normalized** (sum ≈ 1),
    /// bit-for-bit — the wire-codec decode path, where re-normalizing
    /// would perturb the low bits and break byte-exact roundtrips.
    /// Returns `None` instead of panicking on any invariant violation
    /// (misaligned lengths, empty, non-finite values, negative weights,
    /// or a weight sum off unity), so untrusted bytes surface as typed
    /// decode errors.
    pub fn from_normalized(xs: Vec<f64>, ws: Vec<f64>) -> Option<Self> {
        if xs.len() != ws.len() || xs.is_empty() {
            return None;
        }
        if xs.iter().any(|x| !x.is_finite()) {
            return None;
        }
        if !weights_are_normalized(ws.iter().copied()) {
            return None;
        }
        Some(WeightedSamples { xs, ws })
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    pub fn values(&self) -> &[f64] {
        &self.xs
    }

    pub fn weights(&self) -> &[f64] {
        &self.ws
    }

    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ws.iter().copied())
    }

    /// Weighted mean ∑ wᵢ·xᵢ (first scan of the paper's two-scan fit).
    pub fn mean(&self) -> f64 {
        self.iter().map(|(x, w)| w * x).sum()
    }

    /// Weighted variance ∑ wᵢ·(xᵢ−μ)² (second scan).
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.iter().map(|(x, w)| w * (x - mu) * (x - mu)).sum()
    }

    /// Weighted k-th central moment.
    pub fn central_moment(&self, k: i32) -> f64 {
        let mu = self.mean();
        self.iter().map(|(x, w)| w * (x - mu).powi(k)).sum()
    }

    /// Effective sample size 1/∑wᵢ² — the standard degeneracy diagnostic.
    pub fn effective_sample_size(&self) -> f64 {
        1.0 / self.ws.iter().map(|w| w * w).sum::<f64>()
    }

    /// Minimum and maximum sample values.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &self.xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        (lo, hi)
    }

    /// Weighted empirical cdf at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.iter().filter(|&(xi, _)| xi <= x).map(|(_, w)| w).sum()
    }

    /// Weighted quantile (inverse empirical cdf).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        let mut idx: Vec<usize> = (0..self.xs.len()).collect();
        idx.sort_by(|&a, &b| {
            self.xs[a]
                .partial_cmp(&self.xs[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut acc = 0.0;
        for &i in &idx {
            acc += self.ws[i];
            if acc >= p {
                return self.xs[i];
            }
        }
        self.xs[*idx.last().expect("non-empty")]
    }

    /// Fit the KL-optimal Gaussian q = N(μ, σ²) minimizing KL(p̂‖q):
    /// μ = ∑wᵢxᵢ, σ² = ∑wᵢ(xᵢ−μ)² — the closed form of §4.3.
    ///
    /// A tiny variance floor keeps degenerate clouds (all particles equal)
    /// representable.
    pub fn fit_gaussian(&self) -> Gaussian {
        let mu = self.mean();
        let var = self.variance().max(1e-18);
        Gaussian::from_mean_var(mu, var)
    }

    /// KL(p̂‖q) for a candidate density q, up to the constant ∑wᵢ·ln wᵢ
    /// (which does not depend on q): returns −∑ wᵢ · ln q(xᵢ), the
    /// weighted cross-entropy. Lower is better; differences between two
    /// candidate q's equal their true KL differences.
    pub fn cross_entropy<F: Fn(f64) -> f64>(&self, ln_q: F) -> f64 {
        -self.iter().map(|(x, w)| w * ln_q(x)).sum::<f64>()
    }

    /// Systematic resampling to `n` equally-weighted samples — the
    /// low-variance scheme used inside the particle filter.
    pub fn resample_systematic(&self, n: usize, rng: &mut dyn RngCore) -> WeightedSamples {
        assert!(n > 0);
        let step = 1.0 / n as f64;
        let start: f64 = rng.gen::<f64>() * step;
        let mut out = Vec::with_capacity(n);
        let mut acc = self.ws[0];
        let mut i = 0usize;
        for k in 0..n {
            let u = start + k as f64 * step;
            while acc < u && i + 1 < self.xs.len() {
                i += 1;
                acc += self.ws[i];
            }
            out.push(self.xs[i]);
        }
        WeightedSamples::unweighted(out)
    }

    /// Draw one value according to the weights.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for (x, w) in self.iter() {
            acc += w;
            if u <= acc {
                return x;
            }
        }
        *self.xs.last().expect("non-empty")
    }
}

/// Weighted samples in d dimensions (particle clouds over locations).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSamplesNd {
    /// Row-major: n × d.
    xs: Vec<f64>,
    ws: Vec<f64>,
    dim: usize,
}

impl WeightedSamplesNd {
    pub fn new(xs: Vec<f64>, ws: Vec<f64>, dim: usize) -> Self {
        assert!(dim >= 1);
        assert_eq!(xs.len(), ws.len() * dim, "xs must be n×d");
        assert!(!ws.is_empty());
        let total: f64 = ws.iter().sum();
        assert!(total > 0.0 && total.is_finite());
        let ws = ws.into_iter().map(|w| w / total).collect();
        WeightedSamplesNd { xs, ws, dim }
    }

    /// Rebuild from already-normalized weights without re-normalizing —
    /// the multivariate counterpart of
    /// [`WeightedSamples::from_normalized`]. `None` on any invariant
    /// violation instead of a panic.
    pub fn from_normalized(xs: Vec<f64>, ws: Vec<f64>, dim: usize) -> Option<Self> {
        if dim == 0 || ws.is_empty() || xs.len() != ws.len() * dim {
            return None;
        }
        if xs.iter().any(|x| !x.is_finite()) {
            return None;
        }
        if !weights_are_normalized(ws.iter().copied()) {
            return None;
        }
        Some(WeightedSamplesNd { xs, ws, dim })
    }

    pub fn len(&self) -> usize {
        self.ws.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ws.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn point(&self, i: usize) -> &[f64] {
        &self.xs[i * self.dim..(i + 1) * self.dim]
    }

    pub fn weight(&self, i: usize) -> f64 {
        self.ws[i]
    }

    /// Weighted mean vector.
    pub fn mean(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.dim];
        for i in 0..self.len() {
            let w = self.ws[i];
            for (mj, &xj) in m.iter_mut().zip(self.point(i)) {
                *mj += w * xj;
            }
        }
        m
    }

    /// Weighted covariance matrix (row-major d×d), with a small diagonal
    /// floor so the result stays positive definite.
    pub fn covariance(&self) -> Vec<f64> {
        let mu = self.mean();
        let d = self.dim;
        let mut cov = vec![0.0; d * d];
        for i in 0..self.len() {
            let w = self.ws[i];
            let p = self.point(i);
            for a in 0..d {
                let da = p[a] - mu[a];
                for b in 0..d {
                    cov[a * d + b] += w * da * (p[b] - mu[b]);
                }
            }
        }
        for a in 0..d {
            cov[a * d + a] += 1e-12;
        }
        cov
    }

    /// KL-optimal multivariate Gaussian fit (weighted mean + covariance,
    /// the multivariate analogue of the §4.3 formulas).
    pub fn fit_mv_gaussian(&self) -> crate::dist::MvGaussian {
        crate::dist::MvGaussian::new(self.mean(), self.covariance())
    }

    /// Marginal scalar samples along axis `axis`.
    pub fn marginal(&self, axis: usize) -> WeightedSamples {
        assert!(axis < self.dim);
        let xs: Vec<f64> = (0..self.len()).map(|i| self.point(i)[axis]).collect();
        WeightedSamples::new(xs, self.ws.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn weights_normalize() {
        let s = WeightedSamples::new(vec![1.0, 2.0], vec![2.0, 6.0]);
        close(s.weights()[0], 0.25, 1e-15);
        close(s.weights()[1], 0.75, 1e-15);
        close(s.mean(), 0.25 + 1.5, 1e-15);
    }

    #[test]
    fn moments_match_closed_form() {
        let s = WeightedSamples::new(vec![0.0, 10.0], vec![0.5, 0.5]);
        close(s.mean(), 5.0, 1e-15);
        close(s.variance(), 25.0, 1e-15);
        close(s.central_moment(3), 0.0, 1e-12);
    }

    #[test]
    fn kl_fit_is_weighted_moments() {
        let s = WeightedSamples::new(vec![1.0, 3.0, 5.0], vec![0.2, 0.5, 0.3]);
        let g = s.fit_gaussian();
        close(g.mean(), s.mean(), 1e-15);
        close(g.variance(), s.variance(), 1e-12);
    }

    #[test]
    fn kl_fit_minimizes_cross_entropy() {
        // The fitted Gaussian must beat perturbed alternatives in KL(p̂‖q).
        let mut rng = StdRng::seed_from_u64(17);
        let true_dist = Gaussian::new(2.0, 1.5);
        let xs: Vec<f64> = (0..500).map(|_| true_dist.sample(&mut rng)).collect();
        let s = WeightedSamples::unweighted(xs);
        let best = s.fit_gaussian();
        let ce_best = s.cross_entropy(|x| best.ln_pdf(x));
        for &(dm, ds) in &[(0.3, 0.0), (-0.3, 0.0), (0.0, 0.4), (0.0, -0.4)] {
            let alt = Gaussian::new(best.mean() + dm, best.std_dev() + ds);
            let ce_alt = s.cross_entropy(|x| alt.ln_pdf(x));
            assert!(
                ce_best <= ce_alt + 1e-12,
                "perturbed ({dm},{ds}) beat the KL fit"
            );
        }
    }

    #[test]
    fn ess_bounds() {
        let uniform = WeightedSamples::unweighted(vec![1.0, 2.0, 3.0, 4.0]);
        close(uniform.effective_sample_size(), 4.0, 1e-12);
        let degenerate = WeightedSamples::new(vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 0.0, 0.0, 0.0]);
        close(degenerate.effective_sample_size(), 1.0, 1e-12);
    }

    #[test]
    fn resampling_preserves_mean() {
        let mut rng = StdRng::seed_from_u64(33);
        let s = WeightedSamples::new(
            (0..100).map(|i| i as f64).collect(),
            (0..100).map(|i| (i as f64 + 1.0).powi(2)).collect(),
        );
        let r = s.resample_systematic(5000, &mut rng);
        assert_eq!(r.len(), 5000);
        close(r.mean(), s.mean(), 1.5);
        // All resampled values must come from the original support.
        let (lo, hi) = s.range();
        let (rlo, rhi) = r.range();
        assert!(rlo >= lo && rhi <= hi);
    }

    #[test]
    fn quantile_and_cdf_agree() {
        let s = WeightedSamples::new(vec![1.0, 2.0, 3.0], vec![0.2, 0.3, 0.5]);
        close(s.quantile(0.1), 1.0, 1e-15);
        close(s.quantile(0.4), 2.0, 1e-15);
        close(s.quantile(0.9), 3.0, 1e-15);
        close(s.cdf(2.0), 0.5, 1e-15);
        close(s.cdf(0.5), 0.0, 1e-15);
    }

    #[test]
    fn nd_mean_covariance() {
        // Two clusters on a diagonal line → positive xy covariance.
        let xs = vec![0.0, 0.0, 2.0, 2.0];
        let s = WeightedSamplesNd::new(xs, vec![0.5, 0.5], 2);
        let m = s.mean();
        close(m[0], 1.0, 1e-15);
        close(m[1], 1.0, 1e-15);
        let c = s.covariance();
        close(c[0], 1.0, 1e-9);
        close(c[1], 1.0, 1e-9);
        close(c[3], 1.0, 1e-9);
    }

    #[test]
    fn nd_fit_and_marginal() {
        let mut rng = StdRng::seed_from_u64(3);
        let mv = crate::dist::MvGaussian::new(vec![1.0, -1.0], vec![2.0, 0.5, 0.5, 1.0]);
        let n = 20_000;
        let mut flat = Vec::with_capacity(n * 2);
        for _ in 0..n {
            flat.extend(mv.sample(&mut rng));
        }
        let s = WeightedSamplesNd::new(flat, vec![1.0; n], 2);
        let fit = s.fit_mv_gaussian();
        close(fit.mean()[0], 1.0, 0.05);
        close(fit.cov_at(0, 1), 0.5, 0.05);
        let mx = s.marginal(0);
        close(mx.mean(), 1.0, 0.05);
    }
}
