//! The continuous-distribution zoo: the parametric tuple-level pdfs the
//! engine ships inside uncertain tuples (§3, §4.3).
//!
//! [`Dist`] is the closed storage enum — Gaussian, Uniform, Exponential,
//! Gamma, LogNormal, Triangular, Gaussian mixtures, and truncations —
//! and [`MvGaussian`] is the multivariate Gaussian used for object
//! locations. Every scalar form implements [`ContinuousDist`]:
//! pdf/cdf/quantile, exact first two moments, third/fourth cumulants
//! (consumed by the CF-approximation path), closed-form characteristic
//! functions where they exist (numeric quadrature otherwise), and
//! deterministic-seed sampling.

use crate::complex::Complex64;
use crate::quadrature::{adaptive_simpson, filon_cos_sin, gauss_legendre};
use crate::special::{gamma_p, ln_gamma, std_normal_cdf, std_normal_pdf, std_normal_quantile};
use rand::{Rng, RngCore};

/// Common interface of every scalar continuous distribution.
pub trait ContinuousDist {
    fn pdf(&self, x: f64) -> f64;
    fn cdf(&self, x: f64) -> f64;
    fn quantile(&self, p: f64) -> f64;
    fn mean(&self) -> f64;
    fn variance(&self) -> f64;
    /// Interval outside which the density is exactly zero (may be
    /// infinite).
    fn support(&self) -> (f64, f64);
    /// Interior points where the density is not smooth (kinks, corners),
    /// sorted ascending. Piecewise quadrature splits its segments here so
    /// every piece sees a smooth integrand. Default: none.
    fn breakpoints(&self) -> Vec<f64> {
        Vec::new()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64;
    /// Characteristic function φ(t) = E[e^{itX}].
    fn cf(&self, t: f64) -> Complex64;

    fn std_dev(&self) -> f64 {
        self.variance().max(0.0).sqrt()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// P(X > x).
    fn prob_above(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// P(lo < X ≤ hi).
    fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            0.0
        } else {
            (self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0)
        }
    }

    /// Third cumulant κ₃ (default: numeric central-moment quadrature).
    fn cumulant3(&self) -> f64 {
        let mu = self.mean();
        let (lo, hi) = quantile_bounds(self);
        adaptive_simpson(&|x| (x - mu).powi(3) * self.pdf(x), lo, hi, 1e-10)
    }

    /// Fourth cumulant κ₄ = μ₄ − 3σ⁴ (default: numeric quadrature).
    fn cumulant4(&self) -> f64 {
        let mu = self.mean();
        let v = self.variance();
        let (lo, hi) = quantile_bounds(self);
        let m4 = adaptive_simpson(&|x| (x - mu).powi(4) * self.pdf(x), lo, hi, 1e-10);
        m4 - 3.0 * v * v
    }
}

/// Effective finite integration range for numeric trait defaults.
fn quantile_bounds<D: ContinuousDist + ?Sized>(d: &D) -> (f64, f64) {
    (d.quantile(1e-10), d.quantile(1.0 - 1e-10))
}

/// Bisection inverse of a monotone cdf: the x with `cdf(x) = p`, searched
/// inside `[lo, hi]` (bounds are widened automatically if they do not
/// bracket `p`).
pub fn bisect_quantile<F: Fn(f64) -> f64>(cdf: F, p: f64, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let mut span = (hi - lo).max(1e-9);
    for _ in 0..200 {
        if cdf(lo) <= p {
            break;
        }
        lo -= span;
        span *= 2.0;
    }
    span = (hi - lo).max(1e-9);
    for _ in 0..200 {
        if cdf(hi) >= p {
            break;
        }
        hi += span;
        span *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= 1e-13 * (1.0 + mid.abs()) {
            return mid;
        }
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Numeric characteristic function by a single composite Filon pass per
/// smooth segment: the density is sampled once per grid point and the
/// oscillatory factors cos(tx), sin(tx) are integrated exactly against
/// its piecewise-quadratic fit ([`filon_cos_sin`]), so the grid only has
/// to resolve the *density*, never the oscillation. Interior density
/// kinks ([`ContinuousDist::breakpoints`]) cut the support so every
/// segment is smooth; the grid doubles until two refinements agree. Used
/// by the families without a closed-form CF (LogNormal, Triangular,
/// truncations). Replaces the old nested adaptive-Simpson-per-half-period
/// scheme, which re-integrated the density adaptively inside every
/// half-oscillation panel (kept below as the test reference).
fn numeric_cf<D: ContinuousDist + ?Sized>(d: &D, t: f64) -> Complex64 {
    if t == 0.0 {
        return Complex64::ONE;
    }
    if t < 0.0 {
        // φ(−t) = conj(φ(t)) for a real-valued density.
        return numeric_cf(d, -t).conj();
    }
    let (lo, hi) = quantile_bounds(d);
    let mut cuts = vec![lo];
    for bp in d.breakpoints() {
        if bp > lo && bp < hi {
            cuts.push(bp);
        }
    }
    cuts.push(hi);
    cuts.sort_by(f64::total_cmp);
    let (mut re, mut im) = (0.0, 0.0);
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let (r, i) = filon_segment(&|x| d.pdf(x), a, b, t);
        re += r;
        im += i;
    }
    Complex64::new(re, im)
}

/// One smooth segment of the CF integral: composite Filon with grid
/// doubling until two successive refinements agree.
fn filon_segment<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, t: f64) -> (f64, f64) {
    let mut n = 128usize;
    let (mut re, mut im) = filon_cos_sin(f, a, b, t, n);
    while n < 16_384 {
        n *= 2;
        let (re2, im2) = filon_cos_sin(f, a, b, t, n);
        let delta = (re2 - re).abs() + (im2 - im).abs();
        re = re2;
        im = im2;
        if delta <= 1e-11 {
            break;
        }
    }
    (re, im)
}

/// The retired oscillation-aware Simpson-panel CF: the effective support
/// cut into half-period panels, each integrated adaptively — two nested
/// quadratures per panel. Kept only as the agreement reference for the
/// Filon path.
#[cfg(test)]
fn numeric_cf_reference<D: ContinuousDist + ?Sized>(d: &D, t: f64) -> Complex64 {
    if t == 0.0 {
        return Complex64::ONE;
    }
    let (lo, hi) = quantile_bounds(d);
    let seg = (std::f64::consts::PI / t.abs())
        .min((hi - lo) / 8.0)
        .max(1e-12);
    let n_seg = (((hi - lo) / seg).ceil() as usize).clamp(8, 200_000);
    let h = (hi - lo) / n_seg as f64;
    let (mut re, mut im) = (0.0, 0.0);
    for s in 0..n_seg {
        let a = lo + s as f64 * h;
        let b = a + h;
        re += adaptive_simpson(&|x| (t * x).cos() * d.pdf(x), a, b, 1e-11);
        im += adaptive_simpson(&|x| (t * x).sin() * d.pdf(x), a, b, 1e-11);
    }
    Complex64::new(re, im)
}

/// One uniform draw in (0, 1] (never exactly zero, safe for ln).
#[inline]
fn unit_open(rng: &mut dyn RngCore) -> f64 {
    let u: f64 = rng.gen::<f64>();
    u.max(1e-300)
}

/// One standard normal draw (Box–Muller).
fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    let u1 = unit_open(rng);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

// ---------------------------------------------------------------------
// Gaussian
// ---------------------------------------------------------------------

/// Normal distribution N(mean, sd²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    sd: f64,
}

impl Gaussian {
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd > 0.0 && sd.is_finite(),
            "Gaussian sd must be > 0, got {sd}"
        );
        assert!(mean.is_finite());
        Gaussian { mean, sd }
    }

    pub fn from_mean_var(mean: f64, var: f64) -> Self {
        assert!(
            var > 0.0 && var.is_finite(),
            "Gaussian variance must be > 0, got {var}"
        );
        Gaussian::new(mean, var.sqrt())
    }

    /// Exact distribution of the sum of independent Gaussians.
    pub fn sum_of(gs: &[Gaussian]) -> Option<Gaussian> {
        if gs.is_empty() {
            return None;
        }
        let mean = gs.iter().map(|g| g.mean).sum();
        let var: f64 = gs.iter().map(|g| g.sd * g.sd).sum();
        Some(Gaussian::from_mean_var(mean, var))
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    pub fn std_dev(&self) -> f64 {
        self.sd
    }

    pub fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    pub fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        -0.5 * z * z - self.sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sd)
    }

    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * std_normal_quantile(p)
    }

    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }

    pub fn cf(&self, t: f64) -> Complex64 {
        let decay = (-0.5 * self.sd * self.sd * t * t).exp();
        Complex64::cis(self.mean * t) * decay
    }
}

impl ContinuousDist for Gaussian {
    fn pdf(&self, x: f64) -> f64 {
        Gaussian::pdf(self, x)
    }
    fn cdf(&self, x: f64) -> f64 {
        Gaussian::cdf(self, x)
    }
    fn quantile(&self, p: f64) -> f64 {
        Gaussian::quantile(self, p)
    }
    fn mean(&self) -> f64 {
        Gaussian::mean(self)
    }
    fn variance(&self) -> f64 {
        Gaussian::variance(self)
    }
    fn support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        Gaussian::sample(self, rng)
    }
    fn cf(&self, t: f64) -> Complex64 {
        Gaussian::cf(self, t)
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        Gaussian::ln_pdf(self, x)
    }
    fn std_dev(&self) -> f64 {
        self.sd
    }
    fn cumulant3(&self) -> f64 {
        0.0
    }
    fn cumulant4(&self) -> f64 {
        0.0
    }
}

// ---------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------

/// Uniform distribution on [a, b].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    pub fn new(a: f64, b: f64) -> Self {
        assert!(b > a, "Uniform needs b > a, got [{a}, {b}]");
        Uniform { a, b }
    }

    pub fn lo(&self) -> f64 {
        self.a
    }

    pub fn hi(&self) -> f64 {
        self.b
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            1.0 / (self.b - self.a)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.a + p * (self.b - self.a)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }

    fn support(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.a + rng.gen::<f64>() * (self.b - self.a)
    }

    fn cf(&self, t: f64) -> Complex64 {
        if t == 0.0 {
            return Complex64::ONE;
        }
        // e^{it(a+b)/2} · sinc(t(b−a)/2), numerically stable at small t.
        let half_w = 0.5 * (self.b - self.a);
        let arg = t * half_w;
        let sinc = if arg.abs() < 1e-8 {
            1.0 - arg * arg / 6.0
        } else {
            arg.sin() / arg
        };
        Complex64::cis(t * self.mean()) * sinc
    }

    fn cumulant3(&self) -> f64 {
        0.0
    }

    fn cumulant4(&self) -> f64 {
        let w = self.b - self.a;
        -w.powi(4) / 120.0
    }
}

// ---------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------

/// Exponential distribution with the given rate λ (mean 1/λ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be > 0, got {rate}"
        );
        Exponential { rate }
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - p).ln() / self.rate
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -unit_open(rng).ln() / self.rate
    }

    fn cf(&self, t: f64) -> Complex64 {
        // λ / (λ − it)
        Complex64::real(self.rate) / Complex64::new(self.rate, -t)
    }

    fn cumulant3(&self) -> f64 {
        2.0 / self.rate.powi(3)
    }

    fn cumulant4(&self) -> f64 {
        6.0 / self.rate.powi(4)
    }
}

// ---------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------

/// Gamma distribution with shape k and scale θ (mean kθ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    shape: f64,
    scale: f64,
}

impl GammaDist {
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be > 0");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be > 0");
        GammaDist { shape, scale }
    }

    pub fn shape(&self) -> f64 {
        self.shape
    }

    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for GammaDist {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        let hi = self.mean() + 10.0 * self.std_dev();
        bisect_quantile(|x| self.cdf(x), p, 0.0, hi).max(0.0)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Marsaglia–Tsang squeeze; the k < 1 case boosts to k + 1.
        let k = self.shape;
        if k < 1.0 {
            let boosted = GammaDist::new(k + 1.0, self.scale);
            let u = unit_open(rng);
            return boosted.sample(rng) * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = standard_normal(rng);
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = unit_open(rng);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    fn cf(&self, t: f64) -> Complex64 {
        // (1 − iθt)^{−k}
        Complex64::new(1.0, -self.scale * t).powf(-self.shape)
    }

    fn cumulant3(&self) -> f64 {
        2.0 * self.shape * self.scale.powi(3)
    }

    fn cumulant4(&self) -> f64 {
        6.0 * self.shape * self.scale.powi(4)
    }
}

// ---------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------

/// Log-normal: ln X ~ N(mu, sigma²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be > 0");
        assert!(mu.is_finite());
        LogNormal { mu, sigma }
    }

    pub fn mu(&self) -> f64 {
        self.mu
    }

    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let w = (self.sigma * self.sigma).exp();
        (w - 1.0) * (2.0 * self.mu + self.sigma * self.sigma).exp()
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn cf(&self, t: f64) -> Complex64 {
        // No closed form exists; integrate numerically.
        numeric_cf(self, t)
    }

    fn cumulant3(&self) -> f64 {
        let w = (self.sigma * self.sigma).exp();
        let skew = (w + 2.0) * (w - 1.0).sqrt();
        skew * self.variance().powf(1.5)
    }

    fn cumulant4(&self) -> f64 {
        let w = (self.sigma * self.sigma).exp();
        let ex_kurt = w * w * w * w + 2.0 * w * w * w + 3.0 * w * w - 6.0;
        let v = self.variance();
        ex_kurt * v * v
    }
}

// ---------------------------------------------------------------------
// Triangular
// ---------------------------------------------------------------------

/// Triangular distribution on [a, b] with mode c.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    a: f64,
    c: f64,
    b: f64,
}

impl Triangular {
    pub fn new(a: f64, c: f64, b: f64) -> Self {
        assert!(
            a <= c && c <= b && a < b,
            "need a ≤ c ≤ b with a < b, got ({a}, {c}, {b})"
        );
        Triangular { a, c, b }
    }

    pub fn lo(&self) -> f64 {
        self.a
    }

    pub fn mode(&self) -> f64 {
        self.c
    }

    pub fn hi(&self) -> f64 {
        self.b
    }
}

impl ContinuousDist for Triangular {
    fn pdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        if x < a || x > b {
            0.0
        } else if x < c {
            2.0 * (x - a) / ((b - a) * (c - a))
        } else if x > c {
            2.0 * (b - x) / ((b - a) * (b - c))
        } else {
            // x == c: the peak (left/right limits agree when a < c < b).
            2.0 / (b - a)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        if x <= a {
            0.0
        } else if x >= b {
            1.0
        } else if x <= c {
            (x - a) * (x - a) / ((b - a) * (c - a).max(1e-300))
        } else {
            1.0 - (b - x) * (b - x) / ((b - a) * (b - c).max(1e-300))
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        let pc = (c - a) / (b - a);
        if p <= pc {
            a + (p * (b - a) * (c - a)).sqrt()
        } else {
            b - ((1.0 - p) * (b - a) * (b - c)).sqrt()
        }
    }

    fn mean(&self) -> f64 {
        (self.a + self.b + self.c) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }

    fn support(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    fn cf(&self, t: f64) -> Complex64 {
        numeric_cf(self, t)
    }

    fn breakpoints(&self) -> Vec<f64> {
        vec![self.c]
    }

    fn cumulant3(&self) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        let q = a * a + b * b + c * c - a * b - a * c - b * c;
        if q <= 0.0 {
            return 0.0;
        }
        let skew =
            std::f64::consts::SQRT_2 * (a + b - 2.0 * c) * (2.0 * a - b - c) * (a - 2.0 * b + c)
                / (5.0 * q.powf(1.5));
        skew * self.variance().powf(1.5)
    }

    fn cumulant4(&self) -> f64 {
        // Excess kurtosis of every triangular distribution is −3/5.
        let v = self.variance();
        -0.6 * v * v
    }
}

// ---------------------------------------------------------------------
// Gaussian mixture
// ---------------------------------------------------------------------

/// One weighted Gaussian component of a mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureComponent {
    pub weight: f64,
    pub dist: Gaussian,
}

/// Finite mixture of Gaussians — the paper's §4.3 representation for
/// multi-modal tuple distributions ("an object may have moved shelves").
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    comps: Vec<MixtureComponent>,
}

impl GaussianMixture {
    /// Build from components; weights are normalized to sum to 1.
    pub fn new(comps: Vec<MixtureComponent>) -> Self {
        assert!(!comps.is_empty(), "mixture needs at least one component");
        let total: f64 = comps.iter().map(|c| c.weight).sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive value"
        );
        let comps = comps
            .into_iter()
            .map(|c| {
                assert!(c.weight >= 0.0, "negative mixture weight");
                MixtureComponent {
                    weight: c.weight / total,
                    dist: c.dist,
                }
            })
            .collect();
        GaussianMixture { comps }
    }

    /// Build from `(weight, mean, sd)` triples.
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Self {
        GaussianMixture::new(
            triples
                .iter()
                .map(|&(w, m, s)| MixtureComponent {
                    weight: w,
                    dist: Gaussian::new(m, s),
                })
                .collect(),
        )
    }

    /// Rebuild from component weights that are **already normalized**
    /// (sum ≈ 1), bit-for-bit — the wire-codec decode path, where
    /// re-normalizing would perturb the low bits and break byte-exact
    /// roundtrips. `None` on any invariant violation instead of a panic.
    pub fn from_normalized(comps: Vec<MixtureComponent>) -> Option<Self> {
        if comps.is_empty() {
            return None;
        }
        if !crate::samples::weights_are_normalized(comps.iter().map(|c| c.weight)) {
            return None;
        }
        Some(GaussianMixture { comps })
    }

    /// A one-component mixture.
    pub fn single(g: Gaussian) -> Self {
        GaussianMixture::new(vec![MixtureComponent {
            weight: 1.0,
            dist: g,
        }])
    }

    pub fn components(&self) -> &[MixtureComponent] {
        &self.comps
    }

    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    pub fn weights(&self) -> impl Iterator<Item = f64> + '_ {
        self.comps.iter().map(|c| c.weight)
    }

    pub fn mean(&self) -> f64 {
        self.comps.iter().map(|c| c.weight * c.dist.mean()).sum()
    }

    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.comps
            .iter()
            .map(|c| {
                let d = c.dist.mean() - mu;
                c.weight * (c.dist.variance() + d * d)
            })
            .sum()
    }

    pub fn pdf(&self, x: f64) -> f64 {
        self.comps.iter().map(|c| c.weight * c.dist.pdf(x)).sum()
    }

    pub fn cdf(&self, x: f64) -> f64 {
        self.comps.iter().map(|c| c.weight * c.dist.cdf(x)).sum()
    }

    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for c in &self.comps {
            acc += c.weight;
            if u <= acc {
                return c.dist.sample(rng);
            }
        }
        self.comps.last().expect("non-empty").dist.sample(rng)
    }

    pub fn cf(&self, t: f64) -> Complex64 {
        let mut z = Complex64::ZERO;
        for c in &self.comps {
            z += c.dist.cf(t) * c.weight;
        }
        z
    }
}

impl ContinuousDist for GaussianMixture {
    fn pdf(&self, x: f64) -> f64 {
        GaussianMixture::pdf(self, x)
    }

    fn cdf(&self, x: f64) -> f64 {
        GaussianMixture::cdf(self, x)
    }

    fn quantile(&self, p: f64) -> f64 {
        let lo = self
            .comps
            .iter()
            .map(|c| c.dist.mean() - 12.0 * c.dist.std_dev())
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .comps
            .iter()
            .map(|c| c.dist.mean() + 12.0 * c.dist.std_dev())
            .fold(f64::NEG_INFINITY, f64::max);
        bisect_quantile(|x| self.cdf(x), p, lo, hi)
    }

    fn mean(&self) -> f64 {
        GaussianMixture::mean(self)
    }

    fn variance(&self) -> f64 {
        GaussianMixture::variance(self)
    }

    fn support(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        GaussianMixture::sample(self, rng)
    }

    fn cf(&self, t: f64) -> Complex64 {
        GaussianMixture::cf(self, t)
    }

    fn cumulant3(&self) -> f64 {
        // Central moments of a Gaussian mixture in closed form.
        let mu = self.mean();
        self.comps
            .iter()
            .map(|c| {
                let d = c.dist.mean() - mu;
                let v = c.dist.variance();
                c.weight * (d * d * d + 3.0 * d * v)
            })
            .sum()
    }

    fn cumulant4(&self) -> f64 {
        let mu = self.mean();
        let var = self.variance();
        let m4: f64 = self
            .comps
            .iter()
            .map(|c| {
                let d = c.dist.mean() - mu;
                let v = c.dist.variance();
                c.weight * (d.powi(4) + 6.0 * d * d * v + 3.0 * v * v)
            })
            .sum();
        m4 - 3.0 * var * var
    }
}

// ---------------------------------------------------------------------
// Truncation
// ---------------------------------------------------------------------

/// A [`Dist`] conditioned on lying inside `[lo, hi]` (renormalized).
#[derive(Debug, Clone)]
pub struct Truncated {
    inner: Box<Dist>,
    lo: f64,
    hi: f64,
    /// cdf of the inner distribution at `lo`.
    f_lo: f64,
    /// Probability mass the inner distribution places on `[lo, hi]`.
    mass: f64,
    /// Moments are fixed at construction; cached so the per-tuple
    /// conditioning path (select) doesn't re-integrate on every read.
    mean: f64,
    variance: f64,
}

impl Truncated {
    /// Returns `None` when the inner distribution puts (numerically) no
    /// mass on the interval.
    pub fn new(inner: Dist, lo: f64, hi: f64) -> Option<Truncated> {
        assert!(hi > lo, "truncation needs hi > lo");
        let f_lo = inner.cdf(lo);
        let mass = inner.cdf(hi) - f_lo;
        if mass <= 1e-12 || !mass.is_finite() {
            return None;
        }
        let (mean, variance) = truncated_moments(&inner, lo, hi, f_lo, mass);
        Some(Truncated {
            inner: Box::new(inner),
            lo,
            hi,
            f_lo,
            mass,
            mean,
            variance,
        })
    }

    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Mass of the parent distribution inside the bounds.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    pub fn inner(&self) -> &Dist {
        &self.inner
    }
}

/// Mean and variance of `inner` conditioned on `[lo, hi]`: closed form
/// for a Gaussian parent, one-time quadrature over the finite effective
/// range otherwise (the bounds themselves may be infinite).
fn truncated_moments(inner: &Dist, lo: f64, hi: f64, f_lo: f64, mass: f64) -> (f64, f64) {
    if let Dist::Gaussian(g) = inner {
        // Standard truncated-normal moments via the hazard terms.
        let (mu, sd) = (g.mean(), g.std_dev());
        let a = (lo - mu) / sd;
        let b = (hi - mu) / sd;
        let phi_a = if a.is_finite() {
            std_normal_pdf(a)
        } else {
            0.0
        };
        let phi_b = if b.is_finite() {
            std_normal_pdf(b)
        } else {
            0.0
        };
        let d_phi = phi_a - phi_b;
        let a_phi = if a.is_finite() { a * phi_a } else { 0.0 };
        let b_phi = if b.is_finite() { b * phi_b } else { 0.0 };
        let mean = mu + sd * d_phi / mass;
        let var = sd * sd * (1.0 + (a_phi - b_phi) / mass - (d_phi / mass) * (d_phi / mass));
        return (mean, var.max(0.0));
    }
    // Finite effective range through the inner quantile map.
    let eff_lo = inner.quantile(f_lo + 1e-12 * mass).max(lo);
    let eff_hi = inner.quantile(f_lo + (1.0 - 1e-12) * mass).min(hi);
    let pdf = |x: f64| inner.pdf(x) / mass;
    let mean = adaptive_simpson(&|x| x * pdf(x), eff_lo, eff_hi, 1e-10);
    let var = adaptive_simpson(&|x| (x - mean) * (x - mean) * pdf(x), eff_lo, eff_hi, 1e-10);
    (mean, var.max(0.0))
}

impl ContinuousDist for Truncated {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.inner.pdf(x) / self.mass
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            ((self.inner.cdf(x) - self.f_lo) / self.mass).clamp(0.0, 1.0)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.inner
            .quantile(self.f_lo + p.clamp(0.0, 1.0) * self.mass)
            .clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    fn cf(&self, t: f64) -> Complex64 {
        numeric_cf(self, t)
    }

    fn breakpoints(&self) -> Vec<f64> {
        // The parent's kinks survive truncation wherever they fall
        // strictly inside the bounds.
        self.inner
            .breakpoints()
            .into_iter()
            .filter(|&x| x > self.lo && x < self.hi)
            .collect()
    }
}

// ---------------------------------------------------------------------
// The storage enum
// ---------------------------------------------------------------------

/// The closed set of parametric scalar distributions a tuple can carry.
#[derive(Debug, Clone)]
pub enum Dist {
    Gaussian(Gaussian),
    Uniform(Uniform),
    Exponential(Exponential),
    Gamma(GammaDist),
    LogNormal(LogNormal),
    Triangular(Triangular),
    Mixture(GaussianMixture),
    Truncated(Truncated),
}

macro_rules! dist_delegate {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            Dist::Gaussian($d) => $body,
            Dist::Uniform($d) => $body,
            Dist::Exponential($d) => $body,
            Dist::Gamma($d) => $body,
            Dist::LogNormal($d) => $body,
            Dist::Triangular($d) => $body,
            Dist::Mixture($d) => $body,
            Dist::Truncated($d) => $body,
        }
    };
}

impl Dist {
    /// N(mean, sd²).
    pub fn gaussian(mean: f64, sd: f64) -> Dist {
        Dist::Gaussian(Gaussian::new(mean, sd))
    }

    /// Uniform on [a, b].
    pub fn uniform(a: f64, b: f64) -> Dist {
        Dist::Uniform(Uniform::new(a, b))
    }

    pub fn pdf(&self, x: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::pdf(d, x))
    }

    pub fn ln_pdf(&self, x: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::ln_pdf(d, x))
    }

    pub fn cdf(&self, x: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::cdf(d, x))
    }

    pub fn quantile(&self, p: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::quantile(d, p))
    }

    pub fn mean(&self) -> f64 {
        dist_delegate!(self, d => ContinuousDist::mean(d))
    }

    pub fn variance(&self) -> f64 {
        dist_delegate!(self, d => ContinuousDist::variance(d))
    }

    pub fn std_dev(&self) -> f64 {
        dist_delegate!(self, d => ContinuousDist::std_dev(d))
    }

    pub fn support(&self) -> (f64, f64) {
        dist_delegate!(self, d => ContinuousDist::support(d))
    }

    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        dist_delegate!(self, d => ContinuousDist::sample(d, rng))
    }

    pub fn cf(&self, t: f64) -> Complex64 {
        dist_delegate!(self, d => ContinuousDist::cf(d, t))
    }

    pub fn prob_above(&self, x: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::prob_above(d, x))
    }

    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        dist_delegate!(self, d => ContinuousDist::prob_in(d, lo, hi))
    }

    pub fn cumulant3(&self) -> f64 {
        dist_delegate!(self, d => ContinuousDist::cumulant3(d))
    }

    pub fn cumulant4(&self) -> f64 {
        dist_delegate!(self, d => ContinuousDist::cumulant4(d))
    }

    pub fn breakpoints(&self) -> Vec<f64> {
        dist_delegate!(self, d => ContinuousDist::breakpoints(d))
    }

    /// The distribution of aX + b.
    ///
    /// Exact (stays in-family) for location-scale families, mixtures, and
    /// positive scalings of the scale families; otherwise a moment-matched
    /// Gaussian with the exact transformed mean and variance.
    pub fn affine(&self, a: f64, b: f64) -> Dist {
        if a == 0.0 {
            // Degenerate: a point mass at b, represented as a tight Gaussian.
            return Dist::gaussian(b, 1e-9);
        }
        match self {
            Dist::Gaussian(g) => Dist::gaussian(a * g.mean() + b, a.abs() * g.std_dev()),
            Dist::Uniform(u) => {
                let (x, y) = (a * u.lo() + b, a * u.hi() + b);
                Dist::uniform(x.min(y), x.max(y))
            }
            Dist::Triangular(t) => {
                let (x, y, z) = (a * t.lo() + b, a * t.mode() + b, a * t.hi() + b);
                if a > 0.0 {
                    Dist::Triangular(Triangular::new(x, y, z))
                } else {
                    Dist::Triangular(Triangular::new(z, y, x))
                }
            }
            Dist::Exponential(e) if b == 0.0 && a > 0.0 => {
                Dist::Exponential(Exponential::new(e.rate() / a))
            }
            Dist::Gamma(g) if b == 0.0 && a > 0.0 => {
                Dist::Gamma(GammaDist::new(g.shape(), g.scale() * a))
            }
            Dist::LogNormal(l) if b == 0.0 && a > 0.0 => {
                Dist::LogNormal(LogNormal::new(l.mu() + a.ln(), l.sigma()))
            }
            Dist::Mixture(m) => Dist::Mixture(GaussianMixture::new(
                m.components()
                    .iter()
                    .map(|c| MixtureComponent {
                        weight: c.weight,
                        dist: Gaussian::new(a * c.dist.mean() + b, a.abs() * c.dist.std_dev()),
                    })
                    .collect(),
            )),
            Dist::Truncated(t) => {
                // aX + b of a truncation is the truncation of the
                // transformed parent at the transformed bounds (exact when
                // the parent's affine is exact, e.g. a Gaussian parent).
                let (blo, bhi) = t.bounds();
                let (x, y) = (a * blo + b, a * bhi + b);
                let (lo, hi) = if a > 0.0 { (x, y) } else { (y, x) };
                match Truncated::new(t.inner().affine(a, b), lo, hi) {
                    Some(tt) => Dist::Truncated(tt),
                    None => Dist::Gaussian(Gaussian::from_mean_var(
                        a * t.mean() + b,
                        (a * a * t.variance()).max(1e-18),
                    )),
                }
            }
            other => {
                // Moment match: mean and variance transform exactly.
                Dist::Gaussian(Gaussian::from_mean_var(
                    a * other.mean() + b,
                    (a * a * other.variance()).max(1e-18),
                ))
            }
        }
    }

    /// Condition on `lo ≤ X ≤ hi`: the renormalized truncation plus the
    /// mass the original distribution placed on the interval. `None` if
    /// the interval carries (numerically) no mass.
    pub fn truncate(&self, lo: f64, hi: f64) -> Option<(Dist, f64)> {
        if hi <= lo {
            return None;
        }
        let t = Truncated::new(self.clone(), lo, hi)?;
        let mass = t.mass();
        Some((Dist::Truncated(t), mass))
    }
}

impl ContinuousDist for Dist {
    fn pdf(&self, x: f64) -> f64 {
        Dist::pdf(self, x)
    }
    fn cdf(&self, x: f64) -> f64 {
        Dist::cdf(self, x)
    }
    fn quantile(&self, p: f64) -> f64 {
        Dist::quantile(self, p)
    }
    fn mean(&self) -> f64 {
        Dist::mean(self)
    }
    fn variance(&self) -> f64 {
        Dist::variance(self)
    }
    fn support(&self) -> (f64, f64) {
        Dist::support(self)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        Dist::sample(self, rng)
    }
    fn cf(&self, t: f64) -> Complex64 {
        Dist::cf(self, t)
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        Dist::ln_pdf(self, x)
    }
    fn std_dev(&self) -> f64 {
        Dist::std_dev(self)
    }
    fn cumulant3(&self) -> f64 {
        Dist::cumulant3(self)
    }
    fn cumulant4(&self) -> f64 {
        Dist::cumulant4(self)
    }
    fn breakpoints(&self) -> Vec<f64> {
        Dist::breakpoints(self)
    }
}

// ---------------------------------------------------------------------
// Multivariate Gaussian
// ---------------------------------------------------------------------

/// Multivariate Gaussian with dense row-major covariance, used for
/// uncertain object locations (x, y[, z]).
#[derive(Debug, Clone, PartialEq)]
pub struct MvGaussian {
    mean: Vec<f64>,
    /// Row-major d×d covariance.
    cov: Vec<f64>,
    /// Row-major lower-triangular Cholesky factor (for sampling).
    chol: Vec<f64>,
}

impl MvGaussian {
    pub fn new(mean: Vec<f64>, cov: Vec<f64>) -> Self {
        let d = mean.len();
        assert!(d >= 1, "need at least one dimension");
        assert_eq!(cov.len(), d * d, "covariance must be d×d");
        for a in 0..d {
            for b in (a + 1)..d {
                let asym = (cov[a * d + b] - cov[b * d + a]).abs();
                assert!(
                    asym <= 1e-9 * (1.0 + cov[a * d + a].abs() + cov[b * d + b].abs()),
                    "covariance must be symmetric"
                );
            }
        }
        let chol = cholesky(&cov, d);
        MvGaussian { mean, cov, chol }
    }

    /// Fallible construction for untrusted inputs (the wire-codec decode
    /// path): every panic in [`MvGaussian::new`] — asymmetric covariance,
    /// non-finite entries, a matrix that stays indefinite through the
    /// jitter schedule — becomes `None` instead.
    pub fn try_new(mean: Vec<f64>, cov: Vec<f64>) -> Option<Self> {
        let d = mean.len();
        if d == 0 || cov.len() != d * d {
            return None;
        }
        if mean.iter().any(|m| !m.is_finite()) || cov.iter().any(|c| !c.is_finite()) {
            return None;
        }
        for a in 0..d {
            for b in (a + 1)..d {
                let asym = (cov[a * d + b] - cov[b * d + a]).abs();
                if asym > 1e-9 * (1.0 + cov[a * d + a].abs() + cov[b * d + b].abs()) {
                    return None;
                }
            }
        }
        let chol = cholesky_jittered(&cov, d)?;
        Some(MvGaussian { mean, cov, chol })
    }

    /// Diagonal covariance sd²·I.
    pub fn isotropic(mean: Vec<f64>, sd: f64) -> Self {
        assert!(sd > 0.0);
        let d = mean.len();
        let mut cov = vec![0.0; d * d];
        for a in 0..d {
            cov[a * d + a] = sd * sd;
        }
        MvGaussian::new(mean, cov)
    }

    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    pub fn cov(&self) -> &[f64] {
        &self.cov
    }

    pub fn cov_at(&self, a: usize, b: usize) -> f64 {
        self.cov[a * self.dim() + b]
    }

    /// Scalar marginal along `axis`.
    pub fn marginal(&self, axis: usize) -> Gaussian {
        assert!(axis < self.dim());
        Gaussian::from_mean_var(self.mean[axis], self.cov_at(axis, axis).max(1e-18))
    }

    /// Distribution of X − Y for independent X ~ self, Y ~ other.
    pub fn difference(&self, other: &MvGaussian) -> MvGaussian {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let mean = self
            .mean
            .iter()
            .zip(other.mean.iter())
            .map(|(a, b)| a - b)
            .collect();
        let cov = self
            .cov
            .iter()
            .zip(other.cov.iter())
            .map(|(a, b)| a + b)
            .collect();
        MvGaussian::new(mean, cov)
    }

    pub fn sample(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let d = self.dim();
        let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        let mut out = self.mean.clone();
        for (a, o) in out.iter_mut().enumerate() {
            for (b, &zb) in z.iter().enumerate().take(a + 1) {
                *o += self.chol[a * d + b] * zb;
            }
        }
        out
    }

    /// Squared Mahalanobis distance (x−μ)ᵀΣ⁻¹(x−μ) of a point, computed
    /// by forward/back substitution through the Cholesky factor.
    pub fn mahalanobis_sq(&self, x: &[f64]) -> f64 {
        let d = self.dim();
        assert_eq!(x.len(), d, "dimension mismatch");
        // Solve L y = (x − μ); then the distance is ‖y‖².
        let mut y = vec![0.0; d];
        for a in 0..d {
            let mut sum = x[a] - self.mean[a];
            for (k, &yk) in y.iter().enumerate().take(a) {
                sum -= self.chol[a * d + k] * yk;
            }
            y[a] = sum / self.chol[a * d + a];
        }
        y.iter().map(|v| v * v).sum()
    }

    /// Squared Mahalanobis radius of the central `level`-probability
    /// ellipsoid: (x−μ)ᵀΣ⁻¹(x−μ) is χ²(d), so this is the χ²(d) quantile.
    pub fn confidence_radius_sq(&self, level: f64) -> f64 {
        assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
        let d = self.dim() as f64;
        if level == 0.0 {
            return 0.0;
        }
        let hi = d + 10.0 * (2.0 * d).sqrt() + 50.0;
        bisect_quantile(|x| crate::special::chi_square_cdf(x, d), level, 0.0, hi).max(0.0)
    }

    /// Largest absolute off-diagonal correlation.
    fn max_abs_correlation(&self) -> f64 {
        let d = self.dim();
        let mut worst = 0.0f64;
        for a in 0..d {
            for b in (a + 1)..d {
                let denom = (self.cov_at(a, a) * self.cov_at(b, b)).sqrt().max(1e-300);
                worst = worst.max((self.cov_at(a, b) / denom).abs());
            }
        }
        worst
    }

    /// P(lo ≤ X ≤ hi component-wise).
    ///
    /// Exact (product of marginal probabilities) when the covariance is
    /// (numerically) diagonal — the case produced by [`Self::isotropic`]
    /// and differences thereof. For correlated covariances a
    /// deterministic conditional quadrature is used in 2-d (exact), and
    /// the deterministic Genz sequentially-conditioned quadrature above
    /// (~1e-8 for the engine's low-dimensional location boxes; replaces
    /// the old fixed-seed Monte-Carlo fallback and its ~1e-2 noise
    /// floor).
    pub fn prob_in_box(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let d = self.dim();
        assert_eq!(lo.len(), d);
        assert_eq!(hi.len(), d);
        if self.max_abs_correlation() < 1e-12 {
            let mut p = 1.0;
            for a in 0..d {
                let m = self.marginal(a);
                p *= (m.cdf(hi[a]) - m.cdf(lo[a])).clamp(0.0, 1.0);
            }
            return p;
        }
        if d == 2 {
            // Deterministic: integrate the conditional Y | X = x band over
            // the X range (exact bivariate-normal quadrature).
            let (m0, m1) = (self.mean[0], self.mean[1]);
            let s00 = self.cov_at(0, 0).max(1e-300);
            let s01 = self.cov_at(0, 1);
            let s11 = self.cov_at(1, 1);
            let sd0 = s00.sqrt();
            let cond_var = (s11 - s01 * s01 / s00).max(1e-300);
            let cond_sd = cond_var.sqrt();
            let slope = s01 / s00;
            let a = lo[0].max(m0 - 10.0 * sd0);
            let b = hi[0].min(m0 + 10.0 * sd0);
            if b <= a {
                return 0.0;
            }
            let gx = Gaussian::new(m0, sd0);
            let integrand = |x: f64| {
                let mc = m1 + slope * (x - m0);
                let band =
                    std_normal_cdf((hi[1] - mc) / cond_sd) - std_normal_cdf((lo[1] - mc) / cond_sd);
                gx.pdf(x) * band.max(0.0)
            };
            return adaptive_simpson(&integrand, a, b, 1e-10).clamp(0.0, 1.0);
        }
        // d > 2 correlated: deterministic Genz quadrature.
        self.genz_prob_in_box(lo, hi)
    }

    /// Genz's sequentially conditioned transform (1992): with L the
    /// Cholesky factor, the box probability becomes a *smooth* integral
    /// over the (d−1)-dimensional unit cube — each coordinate is
    /// conditioned on the previous ones through Φ and Φ⁻¹, and the
    /// integrand is the product of the conditional band masses. The cube
    /// is then integrated with a tensor Gauss–Legendre rule in low
    /// dimension (the engine's location boxes: d ≤ 4) and a
    /// deterministic Richtmyer lattice above. Fully deterministic — no
    /// RNG, no seed, no sampling noise.
    fn genz_prob_in_box(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let d = self.dim();
        let l = &self.chol;
        let a: Vec<f64> = (0..d).map(|i| lo[i] - self.mean[i]).collect();
        let b: Vec<f64> = (0..d).map(|i| hi[i] - self.mean[i]).collect();
        let l00 = l[0].max(1e-300);
        let d1 = std_normal_cdf(a[0] / l00);
        let e1 = std_normal_cdf(b[0] / l00);
        let f1 = (e1 - d1).max(0.0);
        if f1 <= 0.0 {
            return 0.0;
        }
        let m = d - 1;
        let mut y = vec![0.0; m];
        let integrand = |w: &[f64], y: &mut [f64]| -> f64 {
            let (mut dd, mut ee, mut f) = (d1, e1, f1);
            for i in 1..d {
                let u = (dd + w[i - 1] * (ee - dd)).clamp(1e-16, 1.0 - 1e-16);
                y[i - 1] = std_normal_quantile(u);
                let mut shift = 0.0;
                for (j, &yj) in y.iter().enumerate().take(i) {
                    shift += l[i * d + j] * yj;
                }
                let lii = l[i * d + i].max(1e-300);
                dd = std_normal_cdf((a[i] - shift) / lii);
                ee = std_normal_cdf((b[i] - shift) / lii);
                let fi = (ee - dd).max(0.0);
                f *= fi;
                if f <= 0.0 {
                    return 0.0;
                }
            }
            f
        };
        let p = if m <= 3 {
            let order = [64, 48, 24][m - 1];
            tensor_gl_unit_cube(&integrand, &mut y, m, order)
        } else {
            richtmyer_unit_cube(&integrand, &mut y, m, 32_768)
        };
        p.clamp(0.0, 1.0)
    }
}

/// Tensor-product Gauss–Legendre cubature of `f` over the unit cube
/// [0,1]^m with `order` nodes per axis (`order^m` evaluations).
/// `scratch` is the reusable conditioning buffer the integrand fills.
fn tensor_gl_unit_cube<F: Fn(&[f64], &mut [f64]) -> f64>(
    f: &F,
    scratch: &mut [f64],
    m: usize,
    order: usize,
) -> f64 {
    let (nodes, weights) = gauss_legendre(order);
    let un: Vec<f64> = nodes.iter().map(|x| 0.5 * (x + 1.0)).collect();
    let uw: Vec<f64> = weights.iter().map(|w| 0.5 * w).collect();
    let mut idx = vec![0usize; m];
    let mut w = vec![0.0; m];
    let mut total = 0.0;
    loop {
        let mut weight = 1.0;
        for k in 0..m {
            w[k] = un[idx[k]];
            weight *= uw[idx[k]];
        }
        total += weight * f(&w, scratch);
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < order {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == m {
                return total;
            }
        }
    }
}

/// Deterministic equal-weight Richtmyer (Kronecker) lattice over the
/// unit cube: point k has coordinates frac(k·√pⱼ) for distinct primes
/// pⱼ — a fixed low-discrepancy sequence, no RNG involved.
fn richtmyer_unit_cube<F: Fn(&[f64], &mut [f64]) -> f64>(
    f: &F,
    scratch: &mut [f64],
    m: usize,
    n: usize,
) -> f64 {
    const PRIMES: [f64; 12] = [
        2.0, 3.0, 5.0, 7.0, 11.0, 13.0, 17.0, 19.0, 23.0, 29.0, 31.0, 37.0,
    ];
    let alphas: Vec<f64> = (0..m)
        .map(|j| PRIMES[j % PRIMES.len()].sqrt().fract())
        .collect();
    let mut w = vec![0.0; m];
    let mut total = 0.0;
    for k in 1..=n {
        for (wj, &aj) in w.iter_mut().zip(&alphas) {
            *wj = (k as f64 * aj).fract();
        }
        total += f(&w, scratch);
    }
    total / n as f64
}

/// Dense Cholesky factorization with a diagonal jitter retry, returning
/// the lower-triangular factor row-major.
fn cholesky(cov: &[f64], d: usize) -> Vec<f64> {
    match cholesky_jittered(cov, d) {
        Some(l) => l,
        None => panic!("covariance matrix is not positive definite"),
    }
}

/// The shared jitter/retry schedule behind both [`cholesky`] (panicking,
/// in-process construction) and [`MvGaussian::try_new`] (fallible,
/// wire-decode) — one definition so the two paths cannot diverge in
/// what they accept.
fn cholesky_jittered(cov: &[f64], d: usize) -> Option<Vec<f64>> {
    let scale: f64 = (0..d).map(|a| cov[a * d + a].abs()).fold(0.0, f64::max);
    let mut jitter = 0.0;
    for _ in 0..6 {
        if let Some(l) = try_cholesky(cov, d, jitter) {
            return Some(l);
        }
        jitter = if jitter == 0.0 {
            1e-12 * scale.max(1e-12)
        } else {
            jitter * 100.0
        };
    }
    None
}

fn try_cholesky(cov: &[f64], d: usize, jitter: f64) -> Option<Vec<f64>> {
    let mut l = vec![0.0; d * d];
    for a in 0..d {
        for b in 0..=a {
            let mut sum = cov[a * d + b] + if a == b { jitter } else { 0.0 };
            for k in 0..b {
                sum -= l[a * d + k] * l[b * d + k];
            }
            if a == b {
                if sum <= 0.0 {
                    return None;
                }
                l[a * d + a] = sum.sqrt();
            } else {
                l[a * d + b] = sum / l[b * d + b];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn gaussian_basics() {
        let g = Gaussian::new(2.0, 3.0);
        close(g.mean(), 2.0, 0.0);
        close(g.variance(), 9.0, 0.0);
        close(g.cdf(2.0), 0.5, 1e-14);
        close(g.quantile(g.cdf(4.0)), 4.0, 1e-9);
        close(
            g.pdf(2.0),
            1.0 / (3.0 * (2.0 * std::f64::consts::PI).sqrt()),
            1e-12,
        );
        close(g.ln_pdf(5.0), g.pdf(5.0).ln(), 1e-12);
    }

    #[test]
    fn exponential_gamma_consistency() {
        // Exp(λ) == Gamma(1, 1/λ).
        let e = Exponential::new(2.0);
        let g = GammaDist::new(1.0, 0.5);
        for &x in &[0.1, 0.5, 1.0, 3.0] {
            close(e.pdf(x), g.pdf(x), 1e-10);
            close(e.cdf(x), g.cdf(x), 1e-10);
        }
        close(e.cumulant3(), g.cumulant3(), 1e-12);
    }

    #[test]
    fn lognormal_moments() {
        let l = LogNormal::new(0.5, 0.4);
        // E[X] = exp(μ + σ²/2)
        close(l.mean(), (0.5f64 + 0.08).exp(), 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let m = (0..n).map(|_| l.sample(&mut rng)).sum::<f64>() / n as f64;
        close(m, l.mean(), 0.02);
    }

    #[test]
    fn triangular_shape() {
        let t = Triangular::new(0.0, 1.0, 4.0);
        close(t.cdf(0.0), 0.0, 0.0);
        close(t.cdf(4.0), 1.0, 0.0);
        close(t.cdf(1.0), 0.25, 1e-12);
        close(t.mean(), 5.0 / 3.0, 1e-12);
        for &p in &[0.1, 0.25, 0.7, 0.95] {
            close(t.cdf(t.quantile(p)), p, 1e-12);
        }
    }

    #[test]
    fn mixture_moments_and_quantile() {
        let m = GaussianMixture::from_triples(&[(0.25, -4.0, 1.0), (0.75, 4.0, 2.0)]);
        close(m.mean(), 0.25 * -4.0 + 0.75 * 4.0, 1e-12);
        // Var = Σw(σ²+μ²) − μ̄²
        let want_var = 0.25 * (1.0 + 16.0) + 0.75 * (4.0 + 16.0) - 2.0 * 2.0;
        close(m.variance(), want_var, 1e-12);
        for &p in &[0.05, 0.3, 0.5, 0.9] {
            close(m.cdf(ContinuousDist::quantile(&m, p)), p, 1e-9);
        }
    }

    #[test]
    fn dist_affine_gaussian_exact() {
        let d = Dist::gaussian(1.0, 2.0);
        let t = d.affine(-3.0, 5.0);
        close(t.mean(), 2.0, 1e-12);
        close(t.variance(), 36.0, 1e-9);
        assert!(matches!(t, Dist::Gaussian(_)));
    }

    #[test]
    fn dist_truncate_renormalizes() {
        let d = Dist::gaussian(0.0, 1.0);
        let (t, mass) = d.truncate(-1.0, 1.0).unwrap();
        close(mass, d.prob_in(-1.0, 1.0), 1e-12);
        close(t.cdf(-1.0), 0.0, 1e-12);
        close(t.cdf(1.0), 1.0, 1e-12);
        close(t.mean(), 0.0, 1e-9);
        assert!(d.truncate(50.0, 60.0).is_none());
    }

    #[test]
    fn gamma_sampling_mean() {
        for &(k, theta) in &[(0.5, 2.0), (3.0, 1.5)] {
            let g = GammaDist::new(k, theta);
            let mut rng = StdRng::seed_from_u64(11);
            let n = 50_000;
            let m = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
            close(m, g.mean(), 6.0 * g.std_dev() / (n as f64).sqrt() + 0.01);
        }
    }

    #[test]
    fn cf_matches_moments_at_origin() {
        // φ'(0) = iμ numerically, via finite difference.
        let dists = [
            Dist::gaussian(1.5, 0.7),
            Dist::uniform(-1.0, 3.0),
            Dist::Exponential(Exponential::new(1.3)),
            Dist::Gamma(GammaDist::new(2.0, 0.8)),
            Dist::LogNormal(LogNormal::new(0.2, 0.3)),
            Dist::Triangular(Triangular::new(-1.0, 0.5, 2.0)),
        ];
        for d in &dists {
            let h = 1e-4;
            let deriv = (d.cf(h) - d.cf(-h)) / (2.0 * h);
            close(deriv.im, d.mean(), 1e-3);
            close(d.cf(0.0).re, 1.0, 1e-12);
        }
    }

    #[test]
    fn mv_gaussian_marginals_and_box() {
        let mv = MvGaussian::isotropic(vec![1.0, -1.0], 2.0);
        assert_eq!(mv.dim(), 2);
        close(mv.marginal(0).mean(), 1.0, 0.0);
        close(mv.cov_at(0, 1), 0.0, 0.0);
        // Independent ⇒ product of marginal probabilities.
        let p = mv.prob_in_box(&[-1.0, -3.0], &[3.0, 1.0]);
        let px = mv.marginal(0).prob_in(-1.0, 3.0);
        let py = mv.marginal(1).prob_in(-3.0, 1.0);
        close(p, px * py, 1e-12);
    }

    #[test]
    fn affine_of_truncation_keeps_bounds() {
        // select-then-project: °C conditioned above 60, mapped to °F.
        let (t, _) = Dist::gaussian(60.0, 5.0)
            .truncate(60.0, f64::INFINITY)
            .unwrap();
        let f = t.affine(1.8, 32.0);
        assert!(matches!(f, Dist::Truncated(_)), "must stay truncated");
        // No mass below the transformed bound 60·1.8+32 = 140 °F.
        assert!(f.cdf(139.9) == 0.0, "cdf below bound must be 0");
        assert!(f.pdf(139.0) == 0.0);
        close(f.mean(), 1.8 * t.mean() + 32.0, 1e-6);
        close(f.variance(), 1.8 * 1.8 * t.variance(), 1e-6);
        // Negative scale flips the bound to an upper one.
        let neg = t.affine(-2.0, 0.0);
        assert!(
            neg.prob_above(-119.9) == 0.0,
            "flipped bound must cap above"
        );
    }

    #[test]
    fn filon_cf_agrees_with_nested_adaptive_reference() {
        // The single-pass Filon CF must reproduce the retired nested
        // adaptive-quadrature scheme to 1e-9 across every family that
        // integrates numerically, including kinked densities
        // (Triangular) and truncations thereof.
        let families: Vec<Dist> = vec![
            Dist::LogNormal(LogNormal::new(0.2, 0.5)),
            Dist::LogNormal(LogNormal::new(-0.5, 0.25)),
            Dist::Triangular(Triangular::new(-1.0, 0.5, 2.0)),
            Dist::Triangular(Triangular::new(0.0, 0.0, 3.0)),
            Dist::Truncated(Truncated::new(Dist::gaussian(1.0, 2.0), -0.5, 3.0).unwrap()),
            Dist::Truncated(
                Truncated::new(Dist::Triangular(Triangular::new(0.0, 1.0, 4.0)), 0.5, 3.0).unwrap(),
            ),
        ];
        for d in &families {
            for &t in &[0.1, 0.7, 3.0, 11.0, -2.5, 40.0] {
                let got = d.cf(t);
                let want = numeric_cf_reference(d, t);
                assert!(
                    (got.re - want.re).abs() <= 1e-9 && (got.im - want.im).abs() <= 1e-9,
                    "cf disagreement for {d:?} at t={t}: got {got:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn filon_cf_matches_gaussian_closed_form() {
        // Absolute ground truth: run the numeric path on a family whose
        // CF is known exactly.
        let g = Gaussian::new(0.7, 1.3);
        for &t in &[0.2, 1.0, 2.5, -1.7] {
            let got = numeric_cf(&g, t);
            let want = g.cf(t);
            close(got.re, want.re, 1e-9);
            close(got.im, want.im, 1e-9);
        }
    }

    #[test]
    fn prob_in_box_genz_matches_block_diagonal_factorization() {
        // A correlated 2×2 block plus an independent third axis: the 3-d
        // Genz quadrature must equal (exact 2-d conditional quadrature) ×
        // (marginal band) to quadrature accuracy — far beyond the ~1e-2
        // the Monte-Carlo fallback could certify.
        let cov3 = vec![
            1.0, 0.6, 0.0, //
            0.6, 2.0, 0.0, //
            0.0, 0.0, 1.5,
        ];
        let mv3 = MvGaussian::new(vec![0.5, -0.5, 1.0], cov3);
        let p3 = mv3.prob_in_box(&[-1.0, -2.0, 0.0], &[1.5, 1.0, 2.5]);
        let mv2 = MvGaussian::new(vec![0.5, -0.5], vec![1.0, 0.6, 0.6, 2.0]);
        let p2 = mv2.prob_in_box(&[-1.0, -2.0], &[1.5, 1.0]);
        let band = mv3.marginal(2).prob_in(0.0, 2.5);
        close(p3, p2 * band, 1e-8);
    }

    #[test]
    fn prob_in_box_genz_is_deterministic_and_bounded() {
        let cov = vec![
            1.0, 0.5, 0.3, //
            0.5, 1.5, 0.2, //
            0.3, 0.2, 2.0,
        ];
        let mv = MvGaussian::new(vec![0.0, 0.0, 0.0], cov);
        let p1 = mv.prob_in_box(&[-1.0, -1.0, -1.0], &[1.0, 1.0, 1.0]);
        let p2 = mv.prob_in_box(&[-1.0, -1.0, -1.0], &[1.0, 1.0, 1.0]);
        assert_eq!(p1, p2, "deterministic quadrature must be bit-stable");
        assert!((0.0..=1.0).contains(&p1));
        // Whole-space box → probability 1; empty overlap → 0.
        let all = mv.prob_in_box(&[-60.0, -60.0, -60.0], &[60.0, 60.0, 60.0]);
        close(all, 1.0, 1e-9);
        let none = mv.prob_in_box(&[50.0, 50.0, 50.0], &[60.0, 60.0, 60.0]);
        close(none, 0.0, 1e-12);
        // Against a fresh Monte-Carlo reference (sampling is independent
        // of the quadrature now, so this is a real cross-check).
        let mut rng = StdRng::seed_from_u64(13);
        let n = 400_000;
        let (lo, hi) = ([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]);
        let mut hits = 0usize;
        for _ in 0..n {
            let v = mv.sample(&mut rng);
            if (0..3).all(|k| v[k] >= lo[k] && v[k] <= hi[k]) {
                hits += 1;
            }
        }
        close(p1, hits as f64 / n as f64, 5e-3);
    }

    #[test]
    fn prob_in_box_correlated_2d_matches_monte_carlo() {
        let mv = MvGaussian::new(vec![0.5, -0.5], vec![1.0, 0.6, 0.6, 2.0]);
        let (lo, hi) = ([-1.0, -2.0], [1.5, 1.0]);
        let p = mv.prob_in_box(&lo, &hi);
        let mut rng = StdRng::seed_from_u64(77);
        let n = 200_000;
        let mut hits = 0usize;
        for _ in 0..n {
            let v = mv.sample(&mut rng);
            if v[0] >= lo[0] && v[0] <= hi[0] && v[1] >= lo[1] && v[1] <= hi[1] {
                hits += 1;
            }
        }
        close(p, hits as f64 / n as f64, 0.01);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn mv_gaussian_correlated_sampling() {
        let mv = MvGaussian::new(vec![0.0, 0.0], vec![1.0, 0.8, 0.8, 1.0]);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 40_000;
        let mut cxy = 0.0;
        for _ in 0..n {
            let v = mv.sample(&mut rng);
            cxy += v[0] * v[1];
        }
        close(cxy / n as f64, 0.8, 0.03);
        let d = mv.difference(&mv);
        close(d.cov_at(0, 1), 1.6, 1e-12);
        close(d.mean()[0], 0.0, 0.0);
    }
}
