//! Distances between distributions.
//!
//! Table 2 reports a "variance distance ∈ [0, 1]" (per the formula of Ge &
//! Zdonik \[25\]) between each algorithm's output and the exact result
//! distribution. \[25\]'s exact formula is not reproduced in the paper; we
//! use total-variation distance — also bounded in [0, 1], zero iff equal —
//! as the stand-in, and document the substitution in EXPERIMENTS.md. The
//! module also provides KS distance and KL divergences used by tests and
//! the §4.3 conversion quality checks.

use crate::dist::{ContinuousDist, Dist, Gaussian};
use crate::histogram::HistogramPdf;
use crate::samples::WeightedSamples;

/// Shared evaluation grid for comparing a parametric distribution to a
/// histogram (or to another parametric distribution).
fn common_grid(lo: f64, hi: f64, n: usize) -> impl Iterator<Item = (f64, f64)> {
    let step = (hi - lo) / n as f64;
    (0..n).map(move |i| (lo + (i as f64 + 0.5) * step, step))
}

/// Total-variation distance ½∫|p−q| between two parametric distributions,
/// evaluated on a grid spanning both supports. Bounded in [0, 1].
pub fn tv_distance_grid_dists(p: &Dist, q: &Dist) -> f64 {
    let lo = (p.mean() - 10.0 * p.std_dev()).min(q.mean() - 10.0 * q.std_dev());
    let hi = (p.mean() + 10.0 * p.std_dev()).max(q.mean() + 10.0 * q.std_dev());
    let mut acc = 0.0;
    for (x, w) in common_grid(lo, hi, 4096) {
        acc += (p.pdf(x) - q.pdf(x)).abs() * w;
    }
    (0.5 * acc).min(1.0)
}

/// Total-variation distance between a parametric distribution and a
/// histogram ("variance distance" stand-in for Table 2). Bounded [0, 1].
pub fn tv_distance_grid(p: &Dist, hist: &HistogramPdf) -> f64 {
    let lo = (p.mean() - 10.0 * p.std_dev()).min(hist.lo());
    let hi = (p.mean() + 10.0 * p.std_dev()).max(hist.hi());
    let n = (4 * hist.num_bins()).max(1024);
    let mut acc = 0.0;
    for (x, w) in common_grid(lo, hi, n) {
        acc += (p.pdf(x) - hist.pdf(x)).abs() * w;
    }
    (0.5 * acc).min(1.0)
}

/// Kolmogorov–Smirnov distance sup|F_p − F_q| on a grid.
pub fn ks_distance(p: &Dist, q: &Dist) -> f64 {
    let lo = (p.mean() - 10.0 * p.std_dev()).min(q.mean() - 10.0 * q.std_dev());
    let hi = (p.mean() + 10.0 * p.std_dev()).max(q.mean() + 10.0 * q.std_dev());
    let mut sup: f64 = 0.0;
    for (x, _) in common_grid(lo, hi, 2048) {
        sup = sup.max((p.cdf(x) - q.cdf(x)).abs());
    }
    sup
}

/// KS distance between a histogram and a parametric distribution.
pub fn ks_distance_hist(hist: &HistogramPdf, q: &Dist) -> f64 {
    let mut sup: f64 = 0.0;
    for (x, _) in common_grid(hist.lo(), hist.hi(), 4 * hist.num_bins()) {
        sup = sup.max((hist.cdf(x) - q.cdf(x)).abs());
    }
    sup
}

/// Closed-form KL divergence KL(p‖q) between two Gaussians.
pub fn kl_gaussian(p: &Gaussian, q: &Gaussian) -> f64 {
    let (m0, s0) = (p.mean(), p.std_dev());
    let (m1, s1) = (q.mean(), q.std_dev());
    (s1 / s0).ln() + (s0 * s0 + (m0 - m1) * (m0 - m1)) / (2.0 * s1 * s1) - 0.5
}

/// Monte-Carlo-free sample KL: KL(p̂‖q) up to the entropy constant of p̂ —
/// i.e. the weighted cross-entropy −Σ wᵢ ln q(xᵢ). Differences between
/// candidate q's equal true KL differences (the §4.3 objective).
pub fn cross_entropy_vs_dist(samples: &WeightedSamples, q: &Dist) -> f64 {
    samples.cross_entropy(|x| q.ln_pdf(x).max(-745.0))
}

/// Relative error between the means of two distributions, normalized by
/// the reference's standard deviation (scale-free location error).
pub fn standardized_mean_error<A: ContinuousDist, B: ContinuousDist>(
    est: &A,
    reference: &B,
) -> f64 {
    (est.mean() - reference.mean()).abs() / reference.std_dev().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::GaussianMixture;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn tv_zero_for_identical() {
        let p = Dist::gaussian(0.0, 1.0);
        let q = Dist::gaussian(0.0, 1.0);
        close(tv_distance_grid_dists(&p, &q), 0.0, 1e-10);
    }

    #[test]
    fn tv_one_for_disjoint() {
        let p = Dist::gaussian(0.0, 0.1);
        let q = Dist::gaussian(100.0, 0.1);
        close(tv_distance_grid_dists(&p, &q), 1.0, 1e-3);
    }

    #[test]
    fn tv_symmetric_and_monotone_in_separation() {
        let p = Dist::gaussian(0.0, 1.0);
        let near = Dist::gaussian(0.5, 1.0);
        let far = Dist::gaussian(2.0, 1.0);
        let d_near = tv_distance_grid_dists(&p, &near);
        let d_far = tv_distance_grid_dists(&p, &far);
        assert!(d_near < d_far);
        close(tv_distance_grid_dists(&near, &p), d_near, 1e-9);
    }

    #[test]
    fn tv_hist_matches_dist_version() {
        let p = Dist::gaussian(0.0, 1.0);
        let q = Dist::gaussian(1.0, 1.0);
        let hist = HistogramPdf::discretize_auto(&q, 1024, 10.0);
        let via_hist = tv_distance_grid(&p, &hist);
        let direct = tv_distance_grid_dists(&p, &q);
        close(via_hist, direct, 0.01);
    }

    #[test]
    fn ks_known_value_for_shifted_gaussians() {
        // KS of N(0,1) vs N(δ,1) is 2Φ(δ/2)−1.
        let p = Dist::gaussian(0.0, 1.0);
        let q = Dist::gaussian(1.0, 1.0);
        let expected = 2.0 * crate::special::std_normal_cdf(0.5) - 1.0;
        close(ks_distance(&p, &q), expected, 1e-3);
    }

    #[test]
    fn kl_gaussian_properties() {
        let p = Gaussian::new(0.0, 1.0);
        close(kl_gaussian(&p, &p), 0.0, 1e-15);
        let q = Gaussian::new(1.0, 1.0);
        close(kl_gaussian(&p, &q), 0.5, 1e-12);
        assert!(kl_gaussian(&p, &Gaussian::new(0.0, 2.0)) > 0.0);
    }

    #[test]
    fn cross_entropy_prefers_true_model() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let truth = GaussianMixture::from_triples(&[(0.5, -3.0, 0.5), (0.5, 3.0, 0.5)]);
        let xs: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();
        let s = WeightedSamples::unweighted(xs);
        let good = Dist::Mixture(truth.clone());
        let bad = Dist::gaussian(0.0, truth.variance().sqrt());
        assert!(cross_entropy_vs_dist(&s, &good) < cross_entropy_vs_dist(&s, &bad));
    }

    #[test]
    fn standardized_mean_error_scale_free() {
        let a = Gaussian::new(1.0, 1.0);
        let b = Gaussian::new(0.0, 2.0);
        close(standardized_mean_error(&a, &b), 0.5, 1e-12);
    }
}
