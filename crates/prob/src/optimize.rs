//! Small derivative-free optimizer (Nelder–Mead) used for
//! characteristic-function approximation by mixtures and other low-
//! dimensional fitting problems inside the engine.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Whether the simplex spread shrank below tolerance (vs hitting the
    /// evaluation budget).
    pub converged: bool,
}

/// Minimize `f` starting from `x0` using the Nelder–Mead simplex method.
///
/// `step` sets the initial simplex edge length per dimension; `tol` is the
/// convergence threshold on the simplex's objective spread; `max_evals`
/// bounds the work.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    step: f64,
    tol: f64,
    max_evals: usize,
) -> NelderMeadResult {
    let n = x0.len();
    assert!(n >= 1, "need at least one dimension");
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut evals = 0usize;
    let eval = |f: &mut F, x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Build the initial simplex: x0 plus one perturbed vertex per axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let fx0 = eval(&mut f, x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for i in 0..n {
        let mut v = x0.to_vec();
        let delta = if v[i].abs() > 1e-12 {
            step * v[i].abs()
        } else {
            step
        };
        v[i] += delta;
        let fv = eval(&mut f, &v, &mut evals);
        simplex.push((v, fv));
    }

    let mut converged = false;
    while evals < max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < tol {
            converged = true;
            break;
        }

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, &vi) in centroid.iter_mut().zip(v.iter()) {
                *c += vi;
            }
        }
        for c in centroid.iter_mut() {
            *c /= n as f64;
        }

        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(worst.0.iter())
            .map(|(&c, &w)| c + ALPHA * (c - w))
            .collect();
        let fr = eval(&mut f, &reflect, &mut evals);

        if fr < simplex[0].1 {
            // Try expanding further in the same direction.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(&c, &w)| c + GAMMA * ALPHA * (c - w))
                .collect();
            let fe = eval(&mut f, &expand, &mut evals);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(&c, &w)| c + RHO * (w - c))
                .collect();
            let fc = eval(&mut f, &contract, &mut evals);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink all vertices toward the best.
                let best = simplex[0].0.clone();
                for item in simplex.iter_mut().skip(1) {
                    for (v, &b) in item.0.iter_mut().zip(best.iter()) {
                        *v = b + SIGMA * (*v - b);
                    }
                    let x = item.0.clone();
                    item.1 = eval(&mut f, &x, &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    NelderMeadResult {
        x: simplex[0].0.clone(),
        fx: simplex[0].1,
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let res = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            0.5,
            1e-12,
            2000,
        );
        assert!(res.converged);
        assert!((res.x[0] - 3.0).abs() < 1e-4, "x0 = {}", res.x[0]);
        assert!((res.x[1] + 1.0).abs() < 1e-4, "x1 = {}", res.x[1]);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let res = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            0.5,
            1e-14,
            8000,
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x0 = {}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x1 = {}", res.x[1]);
    }

    #[test]
    fn one_dimensional() {
        let res = nelder_mead(|x| (x[0] - 0.25).powi(2), &[10.0], 1.0, 1e-14, 1000);
        assert!((res.x[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn nan_objective_treated_as_infinite() {
        // A NaN region must not poison the search when the start is valid.
        let res = nelder_mead(
            |x| {
                if x[0] < -1.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[0.0],
            0.5,
            1e-12,
            1000,
        );
        assert!((res.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn respects_eval_budget() {
        let res = nelder_mead(|x| x[0].powi(2), &[100.0], 1.0, 0.0, 25);
        assert!(res.evals <= 26); // +1 slack for the vertex finishing a step
    }
}
