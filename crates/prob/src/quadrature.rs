//! Numerical integration helpers.
//!
//! Two workhorses: an adaptive Simpson rule for smooth finite-interval
//! integrands (cdf normalization checks, moment integrals, distribution
//! distances) and a fixed-grid trapezoid rule used by the characteristic-
//! function inversion where the caller controls resolution explicitly.

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute tolerance
/// `tol`. Recursion is depth-limited; worst case falls back to the current
/// best estimate rather than diverging.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    if a == b {
        return 0.0;
    }
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = simpson_rule(a, b, fa, fc, fb);
    simpson_recurse(f, a, b, fa, fc, fb, whole, tol, 50)
}

#[inline]
fn simpson_rule(a: f64, b: f64, fa: f64, fc: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fc + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fc: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = simpson_rule(a, c, fa, fd, fc);
    let right = simpson_rule(c, b, fc, fe, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, c, fa, fd, fc, left, tol / 2.0, depth - 1)
            + simpson_recurse(f, c, b, fc, fe, fb, right, tol / 2.0, depth - 1)
    }
}

/// Trapezoid rule on a uniform grid of `n` intervals (n+1 evaluations).
pub fn trapezoid<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "trapezoid needs at least one interval");
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

/// Integrate a decaying semi-infinite integrand ∫₀^∞ f(t) dt by summing
/// fixed-width trapezoid panels until a panel's contribution drops below
/// `tol` (or `max_panels` is hit). Suited to CF-inversion integrands whose
/// envelope decays like a Gaussian in t.
pub fn semi_infinite_decaying<F: Fn(f64) -> f64>(
    f: &F,
    panel_width: f64,
    per_panel_intervals: usize,
    tol: f64,
    max_panels: usize,
) -> f64 {
    assert!(panel_width > 0.0);
    let mut total = 0.0;
    let mut a = 0.0;
    for _ in 0..max_panels {
        let b = a + panel_width;
        let part = trapezoid(f, a, b, per_panel_intervals);
        total += part;
        if part.abs() < tol {
            break;
        }
        a = b;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn simpson_polynomials_exact() {
        // Simpson is exact on cubics: ∫₋₁² (3x³ − x + 2) dx = 15.75.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        close(adaptive_simpson(&f, -1.0, 2.0, 1e-12), 15.75, 1e-10);
    }

    #[test]
    fn simpson_transcendental() {
        close(
            adaptive_simpson(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-12),
            2.0,
            1e-10,
        );
        close(
            adaptive_simpson(&|x: f64| (-x * x).exp(), -6.0, 6.0, 1e-12),
            std::f64::consts::PI.sqrt(),
            1e-9,
        );
    }

    #[test]
    fn simpson_zero_width() {
        assert_eq!(adaptive_simpson(&|x: f64| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn simpson_reversed_bounds_negates() {
        let f = |x: f64| x * x;
        let fwd = adaptive_simpson(&f, 0.0, 1.0, 1e-12);
        let rev = adaptive_simpson(&f, 1.0, 0.0, 1e-12);
        close(fwd, 1.0 / 3.0, 1e-10);
        close(rev, -1.0 / 3.0, 1e-10);
    }

    #[test]
    fn trapezoid_linear_exact() {
        close(trapezoid(&|x: f64| 2.0 * x + 1.0, 0.0, 4.0, 7), 20.0, 1e-12);
    }

    #[test]
    fn trapezoid_converges() {
        let coarse = trapezoid(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 16);
        let fine = trapezoid(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 4096);
        assert!((fine - 2.0).abs() < (coarse - 2.0).abs());
        close(fine, 2.0, 1e-6);
    }

    #[test]
    fn semi_infinite_gaussian_tail() {
        // ∫₀^∞ e^{−t²/2} dt = √(π/2)
        let val = semi_infinite_decaying(&|t: f64| (-0.5 * t * t).exp(), 1.0, 64, 1e-12, 64);
        close(val, (std::f64::consts::PI / 2.0).sqrt(), 1e-8);
    }
}
