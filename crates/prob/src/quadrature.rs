//! Numerical integration helpers.
//!
//! Two workhorses: an adaptive Simpson rule for smooth finite-interval
//! integrands (cdf normalization checks, moment integrals, distribution
//! distances) and a fixed-grid trapezoid rule used by the characteristic-
//! function inversion where the caller controls resolution explicitly.

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute tolerance
/// `tol`. Recursion is depth-limited; worst case falls back to the current
/// best estimate rather than diverging.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    if a == b {
        return 0.0;
    }
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = simpson_rule(a, b, fa, fc, fb);
    simpson_recurse(f, a, b, fa, fc, fb, whole, tol, 50)
}

#[inline]
fn simpson_rule(a: f64, b: f64, fa: f64, fc: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fc + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fc: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = simpson_rule(a, c, fa, fd, fc);
    let right = simpson_rule(c, b, fc, fe, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, c, fa, fd, fc, left, tol / 2.0, depth - 1)
            + simpson_recurse(f, c, b, fc, fe, fb, right, tol / 2.0, depth - 1)
    }
}

/// Composite Filon quadrature of the oscillatory pair
/// (∫ₐᵇ f(x)·cos(tx) dx, ∫ₐᵇ f(x)·sin(tx) dx) on a uniform grid of
/// `intervals` panels (`intervals` even, one `f` evaluation per grid
/// point). On each double panel `f` is fitted by the interpolating
/// quadratic and the product with the oscillation is integrated
/// *exactly* via the classical Filon weights α(θ), β(θ), γ(θ) with
/// θ = t·h — so the step size only has to resolve `f`, never the
/// oscillation. The small-θ weights switch to their Taylor series to
/// dodge the catastrophic cancellation in the closed forms (θ → 0
/// recovers composite Simpson: α → 0, β → 2/3, γ → 4/3).
pub fn filon_cos_sin<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    t: f64,
    intervals: usize,
) -> (f64, f64) {
    assert!(
        intervals >= 2 && intervals.is_multiple_of(2),
        "need an even grid"
    );
    assert!(t != 0.0, "t = 0 is not oscillatory; use adaptive_simpson");
    let n = intervals;
    let h = (b - a) / n as f64;
    let (alpha, beta, gamma) = filon_weights(t * h);
    let (mut c_even, mut c_odd, mut s_even, mut s_odd) = (0.0, 0.0, 0.0, 0.0);
    let (mut fa_cos, mut fa_sin, mut fb_cos, mut fb_sin) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..=n {
        let x = if i == n { b } else { a + i as f64 * h };
        let fx = f(x);
        let (sin_tx, cos_tx) = (t * x).sin_cos();
        if i % 2 == 0 {
            c_even += fx * cos_tx;
            s_even += fx * sin_tx;
        } else {
            c_odd += fx * cos_tx;
            s_odd += fx * sin_tx;
        }
        if i == 0 {
            fa_cos = fx * cos_tx;
            fa_sin = fx * sin_tx;
        }
        if i == n {
            fb_cos = fx * cos_tx;
            fb_sin = fx * sin_tx;
        }
    }
    c_even -= 0.5 * (fa_cos + fb_cos);
    s_even -= 0.5 * (fa_sin + fb_sin);
    let cos_int = h * (alpha * (fb_sin - fa_sin) + beta * c_even + gamma * c_odd);
    let sin_int = h * (alpha * (fa_cos - fb_cos) + beta * s_even + gamma * s_odd);
    (cos_int, sin_int)
}

/// Filon's α, β, γ as functions of θ = t·h (Abramowitz & Stegun
/// 25.4.47ff), with the θ → 0 Taylor series below |θ| = 1/6.
fn filon_weights(theta: f64) -> (f64, f64, f64) {
    let th = theta;
    let t2 = th * th;
    if th.abs() < 1.0 / 6.0 {
        let alpha = th * t2 * (2.0 / 45.0 + t2 * (-2.0 / 315.0 + t2 * (2.0 / 4725.0)));
        let beta = 2.0 / 3.0 + t2 * (2.0 / 15.0 + t2 * (-4.0 / 105.0 + t2 * (2.0 / 567.0)));
        let gamma = 4.0 / 3.0 + t2 * (-2.0 / 15.0 + t2 * (1.0 / 210.0 + t2 * (-1.0 / 11340.0)));
        (alpha, beta, gamma)
    } else {
        let (s, c) = th.sin_cos();
        let t3 = t2 * th;
        let alpha = (t2 + th * s * c - 2.0 * s * s) / t3;
        let beta = 2.0 * (th * (1.0 + c * c) - 2.0 * s * c) / t3;
        let gamma = 4.0 * (s - th * c) / t3;
        (alpha, beta, gamma)
    }
}

/// Gauss–Legendre nodes and weights on [−1, 1] (ascending nodes), by
/// Newton iteration on the Legendre recurrence from Chebyshev initial
/// guesses. Exact for polynomials of degree ≤ 2n−1.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // i-th largest root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (mut p0, mut p1) = (1.0f64, 0.0f64);
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = (((2 * j + 1) as f64) * x * p1 - j as f64 * p2) / (j as f64 + 1.0);
            }
            dp = n as f64 * (x * p0 - p1) / (x * x - 1.0);
            let dx = p0 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[n - 1 - i] = x;
        nodes[i] = -x;
        weights[n - 1 - i] = w;
        weights[i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

/// Trapezoid rule on a uniform grid of `n` intervals (n+1 evaluations).
pub fn trapezoid<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "trapezoid needs at least one interval");
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

/// Integrate a decaying semi-infinite integrand ∫₀^∞ f(t) dt by summing
/// fixed-width trapezoid panels until a panel's contribution drops below
/// `tol` (or `max_panels` is hit). Suited to CF-inversion integrands whose
/// envelope decays like a Gaussian in t.
pub fn semi_infinite_decaying<F: Fn(f64) -> f64>(
    f: &F,
    panel_width: f64,
    per_panel_intervals: usize,
    tol: f64,
    max_panels: usize,
) -> f64 {
    assert!(panel_width > 0.0);
    let mut total = 0.0;
    let mut a = 0.0;
    for _ in 0..max_panels {
        let b = a + panel_width;
        let part = trapezoid(f, a, b, per_panel_intervals);
        total += part;
        if part.abs() < tol {
            break;
        }
        a = b;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn simpson_polynomials_exact() {
        // Simpson is exact on cubics: ∫₋₁² (3x³ − x + 2) dx = 15.75.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        close(adaptive_simpson(&f, -1.0, 2.0, 1e-12), 15.75, 1e-10);
    }

    #[test]
    fn simpson_transcendental() {
        close(
            adaptive_simpson(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-12),
            2.0,
            1e-10,
        );
        close(
            adaptive_simpson(&|x: f64| (-x * x).exp(), -6.0, 6.0, 1e-12),
            std::f64::consts::PI.sqrt(),
            1e-9,
        );
    }

    #[test]
    fn simpson_zero_width() {
        assert_eq!(adaptive_simpson(&|x: f64| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn simpson_reversed_bounds_negates() {
        let f = |x: f64| x * x;
        let fwd = adaptive_simpson(&f, 0.0, 1.0, 1e-12);
        let rev = adaptive_simpson(&f, 1.0, 0.0, 1e-12);
        close(fwd, 1.0 / 3.0, 1e-10);
        close(rev, -1.0 / 3.0, 1e-10);
    }

    #[test]
    fn trapezoid_linear_exact() {
        close(trapezoid(&|x: f64| 2.0 * x + 1.0, 0.0, 4.0, 7), 20.0, 1e-12);
    }

    #[test]
    fn trapezoid_converges() {
        let coarse = trapezoid(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 16);
        let fine = trapezoid(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 4096);
        assert!((fine - 2.0).abs() < (coarse - 2.0).abs());
        close(fine, 2.0, 1e-6);
    }

    #[test]
    fn filon_matches_closed_form_on_oscillatory_products() {
        // ∫₀^π x·cos(t x) and x·sin(t x) against the exact
        // antiderivatives, across slow and fast oscillation. (An adaptive
        // Simpson reference would alias here: for t = −8 every dyadic
        // sample sees cos(8x) = 1 and it confidently returns ∫x dx.)
        let l = std::f64::consts::PI;
        for &t in &[0.3f64, 2.0, 17.0, 61.5, -8.0] {
            let f = |x: f64| x;
            let (c, s) = filon_cos_sin(&f, 0.0, l, t, 512);
            let want_c = ((t * l).cos() - 1.0) / (t * t) + l * (t * l).sin() / t;
            let want_s = (t * l).sin() / (t * t) - l * (t * l).cos() / t;
            close(c, want_c, 1e-10);
            close(s, want_s, 1e-10);
        }
    }

    #[test]
    fn filon_small_theta_degrades_to_simpson() {
        // θ = t·h far below the series cutoff: Filon must agree with the
        // smooth-integrand answer (here exact: a quadratic times cos of a
        // barely-oscillating phase).
        let f = |x: f64| 1.0 + x * x;
        let (c, s) = filon_cos_sin(&f, -1.0, 1.0, 1e-4, 64);
        let want_c = adaptive_simpson(&|x: f64| (1.0 + x * x) * (1e-4 * x).cos(), -1.0, 1.0, 1e-13);
        let want_s = adaptive_simpson(&|x: f64| (1.0 + x * x) * (1e-4 * x).sin(), -1.0, 1.0, 1e-13);
        close(c, want_c, 1e-12);
        close(s, want_s, 1e-12);
    }

    #[test]
    fn gauss_legendre_exact_for_low_degree() {
        // n = 5 integrates degree ≤ 9 exactly on [−1, 1].
        let (x, w) = gauss_legendre(5);
        assert_eq!(x.len(), 5);
        close(w.iter().sum::<f64>(), 2.0, 1e-14);
        let int_x8: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(8)).sum();
        close(int_x8, 2.0 / 9.0, 1e-13);
        let int_x9: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(9)).sum();
        close(int_x9, 0.0, 1e-14);
        // Nodes come out ascending and symmetric.
        for pair in x.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        close(x[0] + x[4], 0.0, 1e-14);
    }

    #[test]
    fn semi_infinite_gaussian_tail() {
        // ∫₀^∞ e^{−t²/2} dt = √(π/2)
        let val = semi_infinite_decaying(&|t: f64| (-0.5 * t * t).exp(), 1.0, 64, 1e-12, 64);
        close(val, (std::f64::consts::PI / 2.0).sqrt(), 1e-8);
    }
}
