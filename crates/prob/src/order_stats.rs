//! Order statistics of independent continuous variables.
//!
//! The paper lists "order statistics" among the techniques used "to
//! compute result distributions directly" (§1/§5). MAX and MIN aggregates
//! over N independent tuples have exact result distributions:
//!
//!   F_max(x) = Π Fᵢ(x)          f_max(x) = Σᵢ fᵢ(x) Π_{j≠i} Fⱼ(x)
//!   F_min(x) = 1 − Π (1−Fᵢ(x))  f_min(x) = Σᵢ fᵢ(x) Π_{j≠i} (1−Fⱼ(x))
//!
//! These are standalone result-distribution types (not part of the
//! [`Dist`] storage enum); convert with [`OrderStatDist::to_histogram`]
//! when a tuple needs to carry the result.

use crate::complex::Complex64;
use crate::dist::{bisect_quantile, ContinuousDist, Dist};
use crate::histogram::HistogramPdf;
use crate::quadrature::adaptive_simpson;
use rand::RngCore;

/// Which extreme the operator computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    Max,
    Min,
}

/// Exact distribution of max/min of independent variables.
#[derive(Debug, Clone)]
pub struct OrderStatDist {
    terms: Vec<Dist>,
    which: Extreme,
}

impl OrderStatDist {
    pub fn max_of(terms: Vec<Dist>) -> Self {
        assert!(!terms.is_empty(), "need at least one input");
        OrderStatDist {
            terms,
            which: Extreme::Max,
        }
    }

    pub fn min_of(terms: Vec<Dist>) -> Self {
        assert!(!terms.is_empty(), "need at least one input");
        OrderStatDist {
            terms,
            which: Extreme::Min,
        }
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Finite working range covering all terms' effective supports.
    fn working_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for d in &self.terms {
            lo = lo.min(d.quantile(1e-9));
            hi = hi.max(d.quantile(1.0 - 1e-9));
        }
        (lo, hi)
    }

    /// Convert to a histogram representation for storage in tuples.
    pub fn to_histogram(&self, bins: usize) -> HistogramPdf {
        let (lo, hi) = self.working_range();
        let width = (hi - lo) / bins as f64;
        let mut masses = Vec::with_capacity(bins);
        let mut prev = self.cdf(lo);
        for i in 0..bins {
            let right = self.cdf(lo + (i + 1) as f64 * width);
            masses.push((right - prev).max(0.0));
            prev = right;
        }
        // Include any residual boundary mass.
        if let Some(first) = masses.first_mut() {
            *first += self.cdf(lo).max(0.0);
        }
        if let Some(last) = masses.last_mut() {
            *last += (1.0 - prev).max(0.0);
        }
        HistogramPdf::from_masses(lo, width, masses)
    }
}

impl ContinuousDist for OrderStatDist {
    fn pdf(&self, x: f64) -> f64 {
        match self.which {
            Extreme::Max => {
                let cdfs: Vec<f64> = self.terms.iter().map(|d| d.cdf(x)).collect();
                let mut total = 0.0;
                for (i, d) in self.terms.iter().enumerate() {
                    let mut prod = d.pdf(x);
                    if prod == 0.0 {
                        continue;
                    }
                    for (j, &c) in cdfs.iter().enumerate() {
                        if j != i {
                            prod *= c;
                        }
                    }
                    total += prod;
                }
                total
            }
            Extreme::Min => {
                let survs: Vec<f64> = self.terms.iter().map(|d| 1.0 - d.cdf(x)).collect();
                let mut total = 0.0;
                for (i, d) in self.terms.iter().enumerate() {
                    let mut prod = d.pdf(x);
                    if prod == 0.0 {
                        continue;
                    }
                    for (j, &s) in survs.iter().enumerate() {
                        if j != i {
                            prod *= s;
                        }
                    }
                    total += prod;
                }
                total
            }
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        match self.which {
            Extreme::Max => self.terms.iter().map(|d| d.cdf(x)).product(),
            Extreme::Min => 1.0 - self.terms.iter().map(|d| 1.0 - d.cdf(x)).product::<f64>(),
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        let (lo, hi) = self.working_range();
        bisect_quantile(|x| self.cdf(x), p, lo - 1.0, hi + 1.0)
    }

    fn mean(&self) -> f64 {
        let (lo, hi) = self.working_range();
        adaptive_simpson(&|x: f64| x * self.pdf(x), lo, hi, 1e-9)
    }

    fn variance(&self) -> f64 {
        let mu = self.mean();
        let (lo, hi) = self.working_range();
        adaptive_simpson(&|x: f64| (x - mu) * (x - mu) * self.pdf(x), lo, hi, 1e-9).max(0.0)
    }

    fn support(&self) -> (f64, f64) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for d in &self.terms {
            let (a, b) = d.support();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        (lo, hi)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut best = match self.which {
            Extreme::Max => f64::NEG_INFINITY,
            Extreme::Min => f64::INFINITY,
        };
        for d in &self.terms {
            let x = d.sample(rng);
            best = match self.which {
                Extreme::Max => best.max(x),
                Extreme::Min => best.min(x),
            };
        }
        best
    }

    fn cf(&self, t: f64) -> Complex64 {
        if t == 0.0 {
            return Complex64::ONE;
        }
        let (lo, hi) = self.working_range();
        let re = adaptive_simpson(&|x: f64| (t * x).cos() * self.pdf(x), lo, hi, 1e-8);
        let im = adaptive_simpson(&|x: f64| (t * x).sin() * self.pdf(x), lo, hi, 1e-8);
        Complex64::new(re, im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn max_of_uniforms_closed_form() {
        // Max of n U(0,1): cdf = xⁿ, mean = n/(n+1).
        let terms: Vec<Dist> = (0..4).map(|_| Dist::uniform(0.0, 1.0)).collect();
        let m = OrderStatDist::max_of(terms);
        close(m.cdf(0.5), 0.5f64.powi(4), 1e-12);
        close(m.mean(), 4.0 / 5.0, 1e-6);
    }

    #[test]
    fn min_of_exponentials_is_exponential() {
        // Min of Exp(λ₁), Exp(λ₂) = Exp(λ₁+λ₂).
        let terms = vec![
            Dist::Exponential(crate::dist::Exponential::new(1.0)),
            Dist::Exponential(crate::dist::Exponential::new(2.0)),
        ];
        let m = OrderStatDist::min_of(terms);
        let exact = crate::dist::Exponential::new(3.0);
        for &x in &[0.1, 0.5, 1.0] {
            close(m.cdf(x), exact.cdf(x), 1e-10);
            close(m.pdf(x), exact.pdf(x), 1e-8);
        }
        close(m.mean(), 1.0 / 3.0, 1e-6);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let terms = vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(1.0, 2.0)];
        let m = OrderStatDist::max_of(terms);
        let total = adaptive_simpson(&|x| m.pdf(x), -15.0, 20.0, 1e-9);
        close(total, 1.0, 1e-6);
    }

    #[test]
    fn quantile_roundtrip() {
        let terms = vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(0.5, 1.0)];
        let m = OrderStatDist::max_of(terms);
        for &p in &[0.1, 0.5, 0.9] {
            close(m.cdf(m.quantile(p)), p, 1e-9);
        }
    }

    #[test]
    fn max_stochastically_dominates_terms() {
        let terms = vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(0.0, 1.0)];
        let m = OrderStatDist::max_of(terms.clone());
        for &x in &[-1.0, 0.0, 1.0] {
            assert!(m.cdf(x) <= terms[0].cdf(x) + 1e-12);
        }
        assert!(m.mean() > 0.0);
        // Known: E[max of two std normals] = 1/√π.
        close(m.mean(), 1.0 / std::f64::consts::PI.sqrt(), 1e-5);
    }

    #[test]
    fn sampling_matches_analytic_mean() {
        let terms = vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(0.0, 1.0)];
        let m = OrderStatDist::max_of(terms);
        let mut rng = StdRng::seed_from_u64(10);
        let n = 30_000;
        let mean = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        close(mean, 1.0 / std::f64::consts::PI.sqrt(), 0.02);
    }

    #[test]
    fn histogram_conversion_preserves_shape() {
        let terms = vec![Dist::gaussian(0.0, 1.0), Dist::gaussian(3.0, 1.0)];
        let m = OrderStatDist::max_of(terms);
        let h = m.to_histogram(256);
        close(h.mean(), m.mean(), 0.05);
        close(h.masses().iter().sum::<f64>(), 1.0, 1e-9);
    }
}
