//! Special mathematical functions implemented from scratch.
//!
//! Everything downstream (Gaussian cdf/quantile, gamma/chi-square cdf,
//! Ljung–Box p-values, …) is built on the three primitives here:
//! `ln_gamma`, the regularized incomplete gamma functions, and the error
//! function derived from them.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a).
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// (via `gamma_q`) otherwise, per the classic Numerical-Recipes split.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: a must be positive, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x.is_infinite() {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q: a must be positive, got {a}");
    if x <= 0.0 {
        return 1.0;
    }
    if x.is_infinite() {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of P(a, x); converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

// ---------------------------------------------------------------------
// erf/erfc: W. J. Cody's rational Chebyshev approximations (the netlib
// `calerf` algorithm, TOMS 1969). Near-machine precision (~1e-16
// relative) at a fixed handful of multiply-adds — these sit on the
// engine's hottest path (every Gaussian cdf of every probabilistic
// selection), where the previous incomplete-gamma series cost hundreds
// of iterations' worth of `ln`/`exp` per call.
// ---------------------------------------------------------------------

// Coefficients transcribed digit-for-digit from Cody's published tables
// (some carry more digits than f64 keeps; kept verbatim for auditability).
/// |x| ≤ 0.46875: erf(x) = x · P(x²)/Q(x²).
#[allow(clippy::excessive_precision)]
const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_56e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_47e3,
    1.857_777_061_846_031_53e-1,
];
#[allow(clippy::excessive_precision)]
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_09e1,
    2.440_246_379_344_441_73e2,
    1.282_616_526_077_372_28e3,
    2.844_236_833_439_170_62e3,
];

/// 0.46875 < |x| ≤ 4: erfc(x) = e^{−x²} · P(x)/Q(x).
#[allow(clippy::excessive_precision)]
const ERFC_C: [f64; 9] = [
    5.641_884_969_886_700_9e-1,
    8.883_149_794_388_375_94e0,
    6.611_919_063_714_162_95e1,
    2.986_351_381_974_001_31e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_58e3,
    2.051_078_377_826_071_47e3,
    1.230_339_354_797_997_25e3,
    2.153_115_354_744_038_46e-8,
];
#[allow(clippy::excessive_precision)]
const ERFC_D: [f64; 8] = [
    1.574_492_611_070_983_47e1,
    1.176_939_508_913_124_99e2,
    5.371_811_018_620_098_58e2,
    1.621_389_574_566_690_19e3,
    3.290_799_235_733_459_63e3,
    4.362_619_090_143_247_16e3,
    3.439_367_674_143_721_64e3,
    1.230_339_354_803_749_42e3,
];

/// |x| > 4: erfc(x) = e^{−x²}/x · (1/√π − P(1/x²)/Q(1/x²)/x²).
#[allow(clippy::excessive_precision)]
const ERFC_P: [f64; 6] = [
    3.053_266_349_612_323_44e-1,
    3.603_448_999_498_044_39e-1,
    1.257_817_261_112_292_46e-1,
    1.608_378_514_874_227_66e-2,
    6.587_491_615_298_378_03e-4,
    1.631_538_713_730_209_78e-2,
];
#[allow(clippy::excessive_precision)]
const ERFC_Q: [f64; 5] = [
    2.568_520_192_289_822_42e0,
    1.872_952_849_923_460_47e0,
    5.279_051_029_514_284_12e-1,
    6.051_834_131_244_131_91e-2,
    2.335_204_976_268_691_85e-3,
];

#[allow(clippy::excessive_precision)]
const ONE_OVER_SQRT_PI: f64 = 5.641_895_835_477_562_9e-1;

/// erfc(y)·e^{y²} for y > 0.46875 (the two rational tail regimes), with
/// Cody's split-exponential trick preserving relative accuracy of the
/// e^{−y²} factor.
fn erfc_tail(y: f64) -> f64 {
    let ratio = if y <= 4.0 {
        let mut num = ERFC_C[8] * y;
        let mut den = y;
        for i in 0..7 {
            num = (num + ERFC_C[i]) * y;
            den = (den + ERFC_D[i]) * y;
        }
        (num + ERFC_C[7]) / (den + ERFC_D[7])
    } else {
        let z2 = 1.0 / (y * y);
        let mut num = ERFC_P[5] * z2;
        let mut den = z2;
        for i in 0..4 {
            num = (num + ERFC_P[i]) * z2;
            den = (den + ERFC_Q[i]) * z2;
        }
        let r = z2 * (num + ERFC_P[4]) / (den + ERFC_Q[4]);
        (ONE_OVER_SQRT_PI - r) / y
    };
    // e^{−y²} = e^{−ysq²}·e^{−(y−ysq)(y+ysq)} with ysq = y rounded to
    // 1/16ths, so the big factor's argument is exact in f64.
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * ratio
}

/// Error function (Cody's rational approximations; ~1e-16 relative).
pub fn erf(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        let z = if y > 1e-300 { y * y } else { 0.0 };
        let mut num = ERF_A[4] * z;
        let mut den = z;
        for i in 0..3 {
            num = (num + ERF_A[i]) * z;
            den = (den + ERF_B[i]) * z;
        }
        return x * (num + ERF_A[3]) / (den + ERF_B[3]);
    }
    let tail = if y >= 6.0 { 0.0 } else { erfc_tail(y) };
    if x > 0.0 {
        1.0 - tail
    } else {
        tail - 1.0
    }
}

/// Complementary error function erfc(x) = 1 − erf(x), accurate for large x.
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        return 1.0 - erf(x);
    }
    // erfc underflows past ~26.5; the exp factors get there naturally.
    let tail = if y >= 27.0 { 0.0 } else { erfc_tail(y) };
    if x > 0.0 {
        tail
    } else {
        2.0 - tail
    }
}

/// Standard normal cdf Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal pdf φ(x).
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal quantile Φ⁻¹(p).
///
/// Acklam's rational approximation refined by one Halley step against the
/// high-precision cdf; good to ~1e-14 in the central region.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "std_normal_quantile: p must be in [0,1], got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-square cdf with `k` degrees of freedom.
pub fn chi_square_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi_square_cdf: dof must be positive");
    if x <= 0.0 {
        0.0
    } else {
        gamma_p(k / 2.0, x / 2.0)
    }
}

/// log of n! via ln_gamma.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(3.0), 2.0f64.ln(), 1e-12);
        close(ln_gamma(6.0), 120.0f64.ln(), 1e-12);
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_small_x() {
        // Γ(0.25)·Γ(0.75) = π / sin(π/4) = π√2
        let lhs = ln_gamma(0.25) + ln_gamma(0.75);
        let rhs = (std::f64::consts::PI * 2.0f64.sqrt()).ln();
        close(lhs, rhs, 1e-12);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
    }

    #[test]
    fn erfc_large_argument_no_cancellation() {
        // erfc(5) ≈ 1.5374597944280348e-12; naive 1−erf would lose it all.
        close(erfc(5.0), 1.537_459_794_428_034_8e-12, 1e-9);
        close(erfc(-5.0), 2.0 - 1.537_459_794_428_034_8e-12, 1e-12);
    }

    #[test]
    fn cody_erf_matches_incomplete_gamma_everywhere() {
        // The rational approximations must agree with the (slow)
        // incomplete-gamma formulation they replaced, across all three
        // Cody regimes and both signs.
        let mut x = -8.0;
        while x <= 8.0 {
            if x != 0.0 {
                let g_erf = if x > 0.0 {
                    gamma_p(0.5, x * x)
                } else {
                    -gamma_p(0.5, x * x)
                };
                let g_erfc = if x >= 0.0 {
                    gamma_q(0.5, x * x)
                } else {
                    1.0 + gamma_p(0.5, x * x)
                };
                assert!(
                    (erf(x) - g_erf).abs() <= 1e-14 * g_erf.abs().max(1.0),
                    "erf({x}): {} vs {}",
                    erf(x),
                    g_erf
                );
                assert!(
                    (erfc(x) - g_erfc).abs() <= 1e-13 * g_erfc.abs().max(1e-25),
                    "erfc({x}): {} vs {}",
                    erfc(x),
                    g_erfc
                );
            }
            x += 0.0625;
        }
        // Deep-tail relative accuracy (past the f64 underflow of 1−erf).
        close(erfc(10.0) / 2.088_487_583_762_545e-45, 1.0, 1e-10);
        assert_eq!(erfc(28.0), 0.0, "underflow clamps to zero");
        assert_eq!(erf(7.0), 1.0);
        assert_eq!(erf(-7.0), -1.0);
    }

    #[test]
    fn normal_cdf_symmetry_and_known() {
        close(std_normal_cdf(0.0), 0.5, 1e-15);
        close(std_normal_cdf(1.96), 0.975_002_104_851_779_7, 1e-10);
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-13);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = std_normal_quantile(p);
            close(std_normal_cdf(x), p, 1e-11);
        }
    }

    #[test]
    fn quantile_extremes() {
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
        close(std_normal_quantile(0.5), 0.0, 1e-14);
    }

    #[test]
    fn gamma_p_q_complementarity() {
        for &a in &[0.5, 1.0, 2.3, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0, 100.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                close(s, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x} (exponential cdf).
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn chi_square_cdf_known() {
        // χ²(k=2) is Exponential(rate 1/2): cdf = 1 − e^{−x/2}
        close(chi_square_cdf(2.0, 2.0), 1.0 - (-1.0f64).exp(), 1e-13);
        // Median of χ²(1) ≈ 0.454936
        close(chi_square_cdf(0.454_936_423_119_572_8, 1.0), 0.5, 1e-9);
    }

    #[test]
    fn ln_factorial_matches_direct() {
        close(ln_factorial(0), 0.0, 1e-15);
        close(ln_factorial(5), 120.0f64.ln(), 1e-12);
        close(ln_factorial(20), 2_432_902_008_176_640_000.0f64.ln(), 1e-12);
    }
}
