//! Histogram (piecewise-constant) pdfs.
//!
//! Two roles in the reproduction:
//!
//! 1. A generic numeric pdf representation — the output format of the
//!    exact characteristic-function inversion ("exact result
//!    distribution" used as the calibration baseline in Table 2).
//! 2. The **histogram-based sampling algorithm** of Ge & Zdonik \[25\],
//!    Table 2's first contender: discretize each input pdf into buckets,
//!    convolve bucket mass vectors pairwise, re-discretizing to a fixed
//!    bucket budget after each step.

use crate::dist::Dist;
use rand::{Rng, RngCore};

/// A probability histogram: `masses[i]` is the probability of the bin
/// `[lo + i·width, lo + (i+1)·width)`; masses sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPdf {
    lo: f64,
    width: f64,
    masses: Vec<f64>,
}

impl HistogramPdf {
    /// Build from raw bin masses (normalized on construction).
    pub fn from_masses(lo: f64, width: f64, masses: Vec<f64>) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bin width must be positive"
        );
        assert!(!masses.is_empty(), "need at least one bin");
        let total: f64 = masses.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "masses must have positive finite sum, got {total}"
        );
        let masses = masses
            .into_iter()
            .map(|m| {
                assert!(m >= -1e-12, "negative bin mass");
                (m / total).max(0.0)
            })
            .collect();
        HistogramPdf { lo, width, masses }
    }

    /// Rebuild from masses that are **already normalized** (sum ≈ 1),
    /// bit-for-bit — the wire-codec decode path, where re-normalizing
    /// would perturb the low bits and break byte-exact roundtrips.
    /// `None` on any invariant violation instead of a panic.
    pub fn from_normalized_masses(lo: f64, width: f64, masses: Vec<f64>) -> Option<Self> {
        if !(width > 0.0 && width.is_finite() && lo.is_finite()) || masses.is_empty() {
            return None;
        }
        if !crate::samples::weights_are_normalized(masses.iter().copied()) {
            return None;
        }
        Some(HistogramPdf { lo, width, masses })
    }

    /// Discretize a distribution over `[lo, hi]` into `bins` equal bins
    /// using exact cdf differences (mass outside the range is folded into
    /// the boundary bins so no probability is lost).
    pub fn discretize(dist: &Dist, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo);
        let width = (hi - lo) / bins as f64;
        let mut masses = Vec::with_capacity(bins);
        let mut prev = 0.0f64; // cdf at current left edge, starting at -inf
        for i in 0..bins {
            let right = if i + 1 == bins {
                1.0
            } else {
                dist.cdf(lo + (i + 1) as f64 * width)
            };
            masses.push((right - prev).max(0.0));
            prev = right;
        }
        HistogramPdf::from_masses(lo, width, masses)
    }

    /// Discretize covering the distribution's `span_sigmas`-sigma range.
    pub fn discretize_auto(dist: &Dist, bins: usize, span_sigmas: f64) -> Self {
        let (mu, sd) = (dist.mean(), dist.std_dev().max(1e-12));
        HistogramPdf::discretize(dist, mu - span_sigmas * sd, mu + span_sigmas * sd, bins)
    }

    pub fn lo(&self) -> f64 {
        self.lo
    }

    pub fn hi(&self) -> f64 {
        self.lo + self.width * self.masses.len() as f64
    }

    pub fn bin_width(&self) -> f64 {
        self.width
    }

    pub fn num_bins(&self) -> usize {
        self.masses.len()
    }

    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Bin-centre x coordinates.
    pub fn centers(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.masses.len()).map(move |i| self.lo + (i as f64 + 0.5) * self.width)
    }

    /// Density at `x` (mass / width within the containing bin).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi() {
            return 0.0;
        }
        let i = ((x - self.lo) / self.width) as usize;
        self.masses[i.min(self.masses.len() - 1)] / self.width
    }

    /// Piecewise-linear cdf.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi() {
            return 1.0;
        }
        let pos = (x - self.lo) / self.width;
        let i = pos as usize;
        let frac = pos - i as f64;
        let below: f64 = self.masses[..i].iter().sum();
        below + self.masses[i.min(self.masses.len() - 1)] * frac
    }

    /// Quantile by walking the bins.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        let mut acc = 0.0;
        for (i, &m) in self.masses.iter().enumerate() {
            if acc + m >= p {
                let frac = if m > 0.0 { (p - acc) / m } else { 0.0 };
                return self.lo + (i as f64 + frac) * self.width;
            }
            acc += m;
        }
        self.hi()
    }

    /// Mean via bin centres.
    pub fn mean(&self) -> f64 {
        self.centers()
            .zip(self.masses.iter())
            .map(|(c, &m)| c * m)
            .sum()
    }

    /// Variance via bin centres plus the within-bin uniform correction
    /// width²/12.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        let between: f64 = self
            .centers()
            .zip(self.masses.iter())
            .map(|(c, &m)| m * (c - mu) * (c - mu))
            .sum();
        between + self.width * self.width / 12.0
    }

    /// Sample a value: pick a bin by mass, uniform within the bin.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for (i, &m) in self.masses.iter().enumerate() {
            acc += m;
            if u <= acc {
                return self.lo + (i as f64 + rng.gen::<f64>()) * self.width;
            }
        }
        self.hi() - self.width * rng.gen::<f64>()
    }

    /// Exact convolution of two histograms with equal bin width: the
    /// distribution of X + Y for independent X, Y.
    pub fn convolve(&self, other: &HistogramPdf) -> HistogramPdf {
        assert!(
            (self.width - other.width).abs() <= 1e-9 * self.width,
            "convolution requires equal bin widths ({} vs {})",
            self.width,
            other.width
        );
        let n = self.masses.len();
        let m = other.masses.len();
        let mut out = vec![0.0; n + m - 1];
        for (i, &a) in self.masses.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.masses.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        // Bin i of self has centre lo_a + (i+½)w; bin j of other has
        // centre lo_b + (j+½)w; their sum lands at lo_a + lo_b + (i+j+1)w,
        // so the output grid starts half a bin later than lo_a + lo_b.
        HistogramPdf::from_masses(self.lo + other.lo + 0.5 * self.width, self.width, out)
    }

    /// Re-discretize onto `bins` equal bins spanning the current range.
    /// This is the lossy step of the Ge–Zdonik pipeline that keeps the
    /// running convolution at a fixed budget.
    pub fn rebin(&self, bins: usize) -> HistogramPdf {
        assert!(bins >= 1);
        if bins == self.masses.len() {
            return self.clone();
        }
        let new_width = (self.hi() - self.lo) / bins as f64;
        let mut out = vec![0.0; bins];
        for (i, &m) in self.masses.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            // Spread this bin's mass over the overlapping new bins.
            let a = self.lo + i as f64 * self.width;
            let b = a + self.width;
            let j0 = ((a - self.lo) / new_width) as usize;
            let j1 = (((b - self.lo) / new_width).ceil() as usize).min(bins);
            for (j, slot) in out.iter_mut().enumerate().take(j1).skip(j0) {
                let ja = self.lo + j as f64 * new_width;
                let jb = ja + new_width;
                let overlap = (b.min(jb) - a.max(ja)).max(0.0);
                *slot += m * overlap / self.width;
            }
        }
        HistogramPdf::from_masses(self.lo, new_width, out)
    }

    /// Total-variation distance to another histogram, evaluated on a
    /// common refinement grid. Result lies in [0, 1].
    pub fn tv_distance(&self, other: &HistogramPdf) -> f64 {
        let lo = self.lo.min(other.lo);
        let hi = self.hi().max(other.hi());
        let n = 4 * (self.num_bins().max(other.num_bins()));
        let step = (hi - lo) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x = lo + (i as f64 + 0.5) * step;
            acc += (self.pdf(x) - other.pdf(x)).abs() * step;
        }
        (0.5 * acc).min(1.0)
    }
}

/// Build a histogram from raw (unweighted) observations with `bins` equal
/// bins spanning the observed range.
pub fn histogram_from_samples(samples: &[f64], bins: usize) -> HistogramPdf {
    assert!(!samples.is_empty() && bins >= 1);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in samples {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if hi <= lo {
        // Degenerate: all samples equal; one tight bin around the value.
        let w = lo.abs().max(1.0) * 1e-9;
        return HistogramPdf::from_masses(lo - 0.5 * w, w, vec![1.0]);
    }
    let width = (hi - lo) / bins as f64;
    let mut masses = vec![0.0; bins];
    let unit = 1.0 / samples.len() as f64;
    for &x in samples {
        let i = (((x - lo) / width) as usize).min(bins - 1);
        masses[i] += unit;
    }
    HistogramPdf::from_masses(lo, width, masses)
}

/// The **histogram-based sampling SUM algorithm** of Ge & Zdonik \[25\]
/// (Table 2, row 1). Per the paper's description it "discretizes the
/// continuous distributions and samples from the discretized
/// distributions": each input pdf becomes a `buckets`-bucket histogram,
/// `samples` joint draws are taken (one value per input per draw), the
/// per-draw sums are collected, and the result distribution is the
/// histogram of those sums. O(N·buckets + N·samples) per window; accuracy
/// is bounded by both the bucket resolution and the sample count.
pub fn histogram_sum(
    dists: &[Dist],
    buckets: usize,
    samples: usize,
    span_sigmas: f64,
    rng: &mut dyn RngCore,
) -> HistogramPdf {
    assert!(!dists.is_empty(), "histogram_sum needs ≥1 input");
    assert!(samples >= 1);
    let hists: Vec<HistogramPdf> = dists
        .iter()
        .map(|d| HistogramPdf::discretize_auto(d, buckets, span_sigmas))
        .collect();
    let mut sums = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut s = 0.0;
        for h in &hists {
            s += h.sample(rng);
        }
        sums.push(s);
    }
    histogram_from_samples(&sums, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn discretize_preserves_total_mass() {
        let d = Dist::gaussian(0.0, 1.0);
        let h = HistogramPdf::discretize(&d, -4.0, 4.0, 64);
        close(h.masses().iter().sum::<f64>(), 1.0, 1e-12);
        close(h.mean(), 0.0, 1e-6);
        close(h.variance(), 1.0, 0.01);
    }

    #[test]
    fn tail_mass_folded_into_boundary_bins() {
        // Even a too-narrow range keeps total mass = 1.
        let d = Dist::gaussian(0.0, 1.0);
        let h = HistogramPdf::discretize(&d, -0.5, 0.5, 4);
        close(h.masses().iter().sum::<f64>(), 1.0, 1e-12);
        assert!(h.masses()[0] > 0.3); // left tail folded in
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let d = Dist::gaussian(2.0, 0.5);
        let h = HistogramPdf::discretize_auto(&d, 128, 6.0);
        for &p in &[0.1, 0.5, 0.9] {
            close(h.cdf(h.quantile(p)), p, 1e-9);
        }
        close(h.quantile(0.5), 2.0, 0.02);
    }

    #[test]
    fn convolution_of_gaussians_matches_closed_form() {
        let a = Dist::gaussian(1.0, 1.0);
        let b = Dist::gaussian(2.0, 1.0);
        // Equal σ ⇒ equal width with the same bins/span.
        let ha = HistogramPdf::discretize(&a, 1.0 - 6.0, 1.0 + 6.0, 256);
        let hb = HistogramPdf::discretize(&b, 2.0 - 6.0, 2.0 + 6.0, 256);
        let sum = ha.convolve(&hb);
        close(sum.mean(), 3.0, 0.01);
        close(sum.variance(), 2.0, 0.03);
        // Exact answer N(3, 2); check pdf pointwise.
        let exact = Gaussian::new(3.0, 2.0f64.sqrt());
        for &x in &[1.0, 3.0, 5.0] {
            close(sum.pdf(x), exact.pdf(x), 0.01);
        }
    }

    #[test]
    fn rebin_preserves_mass_and_mean() {
        let d = Dist::gaussian(0.0, 1.0);
        let h = HistogramPdf::discretize(&d, -4.0, 4.0, 256);
        let r = h.rebin(32);
        assert_eq!(r.num_bins(), 32);
        close(r.masses().iter().sum::<f64>(), 1.0, 1e-9);
        close(r.mean(), h.mean(), 1e-6);
    }

    #[test]
    fn histogram_sum_matches_gaussian_closed_form() {
        let inputs: Vec<Dist> = (0..20)
            .map(|i| Dist::gaussian(i as f64 * 0.1, 1.0 + (i % 3) as f64 * 0.2))
            .collect();
        let mut rng = StdRng::seed_from_u64(99);
        let h = histogram_sum(&inputs, 128, 20_000, 6.0, &mut rng);
        let exact_mean: f64 = inputs.iter().map(|d| d.mean()).sum();
        let exact_var: f64 = inputs.iter().map(|d| d.variance()).sum();
        close(h.mean(), exact_mean, 0.2);
        close(h.variance(), exact_var, exact_var * 0.08);
    }

    #[test]
    fn histogram_sum_accuracy_improves_with_samples() {
        let inputs: Vec<Dist> = (0..10).map(|_| Dist::gaussian(0.0, 1.0)).collect();
        let exact = Gaussian::new(0.0, 10.0f64.sqrt());
        let exact_d = Dist::Gaussian(exact);
        let err = |s: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = histogram_sum(&inputs, 64, s, 6.0, &mut rng);
            crate::metrics::tv_distance_grid(&exact_d, &h)
        };
        // Average over seeds to damp Monte-Carlo noise.
        let coarse: f64 = (0..4).map(|s| err(200, s)).sum::<f64>() / 4.0;
        let fine: f64 = (0..4).map(|s| err(20_000, s)).sum::<f64>() / 4.0;
        assert!(fine < coarse, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn histogram_from_samples_degenerate_input() {
        let h = histogram_from_samples(&[5.0, 5.0, 5.0], 16);
        close(h.mean(), 5.0, 1e-6);
        close(h.masses().iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn tv_distance_properties() {
        let a = HistogramPdf::discretize(&Dist::gaussian(0.0, 1.0), -5.0, 5.0, 128);
        let b = HistogramPdf::discretize(&Dist::gaussian(0.0, 1.0), -5.0, 5.0, 128);
        close(a.tv_distance(&b), 0.0, 1e-12);
        let far = HistogramPdf::discretize(&Dist::gaussian(100.0, 1.0), 95.0, 105.0, 128);
        close(a.tv_distance(&far), 1.0, 0.01);
        // Symmetry.
        let c = HistogramPdf::discretize(&Dist::gaussian(0.5, 1.2), -5.0, 6.0, 128);
        close(a.tv_distance(&c), c.tv_distance(&a), 1e-12);
    }

    #[test]
    fn sampling_matches_histogram_mean() {
        let d = Dist::gaussian(-3.0, 2.0);
        let h = HistogramPdf::discretize_auto(&d, 64, 6.0);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let m = (0..n).map(|_| h.sample(&mut rng)).sum::<f64>() / n as f64;
        close(m, -3.0, 0.08);
    }

    #[test]
    #[should_panic(expected = "equal bin widths")]
    fn convolve_rejects_mismatched_widths() {
        let a = HistogramPdf::from_masses(0.0, 1.0, vec![1.0]);
        let b = HistogramPdf::from_masses(0.0, 2.0, vec![1.0]);
        let _ = a.convolve(&b);
    }
}
