//! # ustream-prob — probability substrate
//!
//! All the probability and statistics machinery the uncertainty-aware
//! stream engine is built on, implemented from scratch (the allowed crate
//! set has no math libraries):
//!
//! - [`special`] — erf/erfc, ln-gamma, incomplete gamma, normal quantile.
//! - [`complex`] — minimal complex arithmetic for characteristic functions.
//! - [`dist`] — the continuous-distribution zoo ([`dist::Dist`]):
//!   Gaussian, Uniform, Exponential, Gamma, LogNormal, Triangular,
//!   Gaussian mixtures, truncations, and multivariate Gaussians.
//! - [`samples`] — weighted sample sets with the paper's (§4.3)
//!   KL-minimizing Gaussian conversion.
//! - [`fit`] — weighted EM for Gaussian mixtures with AIC/BIC selection.
//! - [`cf`] — characteristic-function sums: exact Gil–Pelaez inversion
//!   and the fast cumulant-matching approximation (Table 2's algorithms).
//! - [`histogram`] — histogram pdfs and the histogram-convolution SUM
//!   baseline of [Ge & Zdonik, ICDE'08] used as Table 2's third algorithm.
//! - [`convolve`] — closed-form/exact sum rules and CLT approximations.
//! - [`order_stats`] — result distributions of MAX/MIN.
//! - [`metrics`] — distances between distributions (variance distance,
//!   KS, KL).
//! - [`quadrature`], [`optimize`], [`moments`] — numeric support.

pub mod cf;
pub mod complex;
pub mod convolve;
pub mod dist;
pub mod fit;
pub mod histogram;
pub mod metrics;
pub mod moments;
pub mod optimize;
pub mod order_stats;
pub mod quadrature;
pub mod samples;
pub mod special;

pub use complex::Complex64;
pub use dist::{
    ContinuousDist, Dist, Exponential, GammaDist, Gaussian, GaussianMixture, LogNormal,
    MixtureComponent, MvGaussian, Triangular, Truncated, Uniform,
};
pub use samples::{WeightedSamples, WeightedSamplesNd};
