//! Property-based tests over the whole distribution zoo: the invariants
//! every `ContinuousDist` implementation must satisfy, regardless of
//! parameters.

use proptest::prelude::*;
use ustream_prob::complex::Complex64;
use ustream_prob::dist::{Dist, Exponential, GammaDist, GaussianMixture, LogNormal, Triangular};
use ustream_prob::quadrature::adaptive_simpson;

/// A strategy producing a varied distribution with sane parameters.
fn any_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (-50.0..50.0f64, 0.1..20.0f64).prop_map(|(m, s)| Dist::gaussian(m, s)),
        (-50.0..50.0f64, 0.1..40.0f64).prop_map(|(a, w)| Dist::uniform(a, a + w)),
        (0.05..5.0f64).prop_map(|r| Dist::Exponential(Exponential::new(r))),
        (0.3..10.0f64, 0.1..5.0f64).prop_map(|(k, t)| Dist::Gamma(GammaDist::new(k, t))),
        (-2.0..2.0f64, 0.1..1.0f64).prop_map(|(m, s)| Dist::LogNormal(LogNormal::new(m, s))),
        (-10.0..10.0f64, 0.5..10.0f64, 0.0..1.0f64)
            .prop_map(|(a, w, f)| { Dist::Triangular(Triangular::new(a, a + f * w, a + w)) }),
        (
            0.1..0.9f64,
            -20.0..0.0f64,
            0.2..5.0f64,
            0.0..20.0f64,
            0.2..5.0f64
        )
            .prop_map(|(w, m1, s1, m2, s2)| {
                Dist::Mixture(GaussianMixture::from_triples(&[
                    (w, m1, s1),
                    (1.0 - w, m2, s2),
                ]))
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdf_is_monotone_and_bounded(d in any_dist(), a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let (lo, hi) = (a.min(b), a.max(b));
        let (fa, fb) = (d.cdf(lo), d.cdf(hi));
        prop_assert!((0.0..=1.0).contains(&fa));
        prop_assert!((0.0..=1.0).contains(&fb));
        prop_assert!(fb >= fa - 1e-12, "cdf must be non-decreasing");
    }

    #[test]
    fn pdf_is_nonnegative(d in any_dist(), x in -100.0..100.0f64) {
        prop_assert!(d.pdf(x) >= 0.0);
    }

    #[test]
    fn quantile_inverts_cdf(d in any_dist(), p in 0.02..0.98f64) {
        let x = d.quantile(p);
        prop_assert!(x.is_finite());
        let back = d.cdf(x);
        prop_assert!((back - p).abs() < 1e-5, "cdf(quantile({p})) = {back}");
    }

    #[test]
    fn density_integrates_to_one(d in any_dist()) {
        let lo = d.quantile(1e-9);
        let hi = d.quantile(1.0 - 1e-9);
        let total = adaptive_simpson(&|x| d.pdf(x), lo, hi, 1e-9);
        prop_assert!((total - 1.0).abs() < 1e-3, "∫pdf = {total}");
    }

    #[test]
    fn cf_at_zero_is_one_and_bounded(d in any_dist(), t in -5.0..5.0f64) {
        let z0 = d.cf(0.0);
        prop_assert!((z0 - Complex64::ONE).abs() < 1e-6);
        prop_assert!(d.cf(t).abs() <= 1.0 + 1e-6, "|φ(t)| ≤ 1");
    }

    #[test]
    fn cf_conjugate_symmetry(d in any_dist(), t in 0.01..5.0f64) {
        let plus = d.cf(t);
        let minus = d.cf(-t);
        prop_assert!((plus.conj() - minus).abs() < 1e-6, "φ(−t) = conj(φ(t))");
    }

    #[test]
    fn variance_matches_quadrature(d in any_dist()) {
        let mu = d.mean();
        let lo = d.quantile(1e-10);
        let hi = d.quantile(1.0 - 1e-10);
        let var_num = adaptive_simpson(&|x| (x - mu) * (x - mu) * d.pdf(x), lo, hi, 1e-10);
        let var = d.variance();
        prop_assert!(
            (var - var_num).abs() < 0.02 * (1.0 + var),
            "variance {var} vs quadrature {var_num}"
        );
    }

    #[test]
    fn sampling_mean_consistent(d in any_dist(), seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let tol = 6.0 * d.std_dev() / (n as f64).sqrt() + 1e-6;
        prop_assert!((m - d.mean()).abs() < tol, "sample mean {m} vs {}", d.mean());
    }

    #[test]
    fn affine_moments(d in any_dist(), a in -3.0..3.0f64, b in -10.0..10.0f64) {
        prop_assume!(a.abs() > 1e-3);
        let t = d.affine(a, b);
        prop_assert!((t.mean() - (a * d.mean() + b)).abs() < 1e-6 * (1.0 + d.mean().abs()));
        // Affine is exact for location-scale; moment-matched otherwise —
        // variance must match in both cases.
        prop_assert!(
            (t.variance() - a * a * d.variance()).abs() < 1e-6 * (1.0 + d.variance()),
            "affine variance"
        );
    }

    #[test]
    fn truncation_renormalizes(d in any_dist(), q1 in 0.1..0.4f64, q2 in 0.6..0.9f64) {
        let lo = d.quantile(q1);
        let hi = d.quantile(q2);
        prop_assume!(hi > lo);
        if let Some((t, mass)) = d.truncate(lo, hi) {
            prop_assert!((mass - (q2 - q1)).abs() < 1e-4);
            prop_assert!(t.cdf(lo) < 1e-6);
            prop_assert!((t.cdf(hi) - 1.0).abs() < 1e-6);
            let m = t.mean();
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6, "truncated mean inside bounds");
        }
    }
}
