//! The RFID sensing model: logistic read probability over distance and
//! angle (§4.1: "a distribution for RFID sensing can be devised using
//! logistic regression over factors such as the distance and angle
//! between the reader and an object").

use rand::rngs::StdRng;
use rand::Rng;

/// Logistic detection model:
/// P(read | d, θ) = σ(b0 + b_dist·d + b_angle·(1 − cos θ)) · (1 − ambient).
///
/// `d` is reader–tag distance (ft), θ the angle between the reader's
/// facing direction and the tag bearing. Negative `b_dist`/`b_angle` make
/// detection fall off with distance and off-axis reads — "read rate …
/// far less than 100% … mobile readers may read objects from arbitrary
/// angles and distances, hence particularly susceptible to variable read
/// rates".
#[derive(Debug, Clone, Copy)]
pub struct SensingModel {
    pub b0: f64,
    pub b_dist: f64,
    pub b_angle: f64,
    /// Extra multiplicative miss factor from environment noise in [0, 1).
    pub ambient_miss: f64,
    /// Hard cutoff beyond which nothing is read (ft).
    pub max_range: f64,
}

impl SensingModel {
    /// A benign model: high read rates within range.
    pub fn clean() -> Self {
        SensingModel {
            b0: 3.5,
            b_dist: -0.25,
            b_angle: -1.0,
            ambient_miss: 0.02,
            max_range: 20.0,
        }
    }

    /// The "highly noisy trace" regime of Figure 3: steep distance decay,
    /// strong angular sensitivity, heavy ambient misses.
    pub fn noisy() -> Self {
        SensingModel {
            b0: 1.8,
            b_dist: -0.35,
            b_angle: -2.0,
            ambient_miss: 0.25,
            max_range: 20.0,
        }
    }

    /// Read probability for geometry (distance ft, angle rad).
    pub fn read_probability(&self, dist: f64, angle: f64) -> f64 {
        if dist > self.max_range {
            return 0.0;
        }
        let z = self.b0 + self.b_dist * dist + self.b_angle * (1.0 - angle.cos());
        let p = 1.0 / (1.0 + (-z).exp());
        p * (1.0 - self.ambient_miss)
    }

    /// Bernoulli draw of a read event.
    pub fn draw(&self, dist: f64, angle: f64, rng: &mut StdRng) -> bool {
        rng.gen::<f64>() < self.read_probability(dist, angle)
    }

    /// Convenience: probability from reader position, facing direction
    /// (unit-ish vector), and tag position.
    pub fn read_probability_at(&self, reader: &[f64; 3], facing: &[f64; 3], tag: &[f64; 3]) -> f64 {
        let dx = tag[0] - reader[0];
        let dy = tag[1] - reader[1];
        let dz = tag[2] - reader[2];
        let dist = (dx * dx + dy * dy + dz * dz).sqrt();
        if dist < 1e-9 {
            return self.read_probability(0.0, 0.0);
        }
        let fn_norm = (facing[0] * facing[0] + facing[1] * facing[1] + facing[2] * facing[2])
            .sqrt()
            .max(1e-12);
        let cos = (dx * facing[0] + dy * facing[1] + dz * facing[2]) / (dist * fn_norm);
        self.read_probability(dist, cos.clamp(-1.0, 1.0).acos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probability_decreases_with_distance() {
        let m = SensingModel::clean();
        let p1 = m.read_probability(1.0, 0.0);
        let p10 = m.read_probability(10.0, 0.0);
        let p19 = m.read_probability(19.0, 0.0);
        assert!(p1 > p10 && p10 > p19, "{p1} > {p10} > {p19}");
        assert_eq!(m.read_probability(25.0, 0.0), 0.0, "hard range cutoff");
    }

    #[test]
    fn probability_decreases_off_axis() {
        let m = SensingModel::noisy();
        let on_axis = m.read_probability(5.0, 0.0);
        let off = m.read_probability(5.0, std::f64::consts::FRAC_PI_2);
        let behind = m.read_probability(5.0, std::f64::consts::PI);
        assert!(on_axis > off && off > behind);
    }

    #[test]
    fn noisy_regime_is_noisier() {
        let clean = SensingModel::clean();
        let noisy = SensingModel::noisy();
        for d in [2.0, 8.0, 15.0] {
            assert!(noisy.read_probability(d, 0.3) < clean.read_probability(d, 0.3));
        }
    }

    #[test]
    fn draws_match_probability() {
        let m = SensingModel::clean();
        let mut rng = StdRng::seed_from_u64(3);
        let p = m.read_probability(5.0, 0.2);
        let n = 20_000;
        let hits = (0..n).filter(|_| m.draw(5.0, 0.2, &mut rng)).count();
        assert!(((hits as f64 / n as f64) - p).abs() < 0.02);
    }

    #[test]
    fn geometric_helper_consistent() {
        let m = SensingModel::clean();
        // Tag straight ahead at 5 ft.
        let p_ahead = m.read_probability_at(&[0.0, 0.0, 4.0], &[1.0, 0.0, 0.0], &[5.0, 0.0, 4.0]);
        assert!((p_ahead - m.read_probability(5.0, 0.0)).abs() < 1e-12);
        // Tag directly behind.
        let p_behind = m.read_probability_at(&[0.0, 0.0, 4.0], &[1.0, 0.0, 0.0], &[-5.0, 0.0, 4.0]);
        assert!(p_behind < p_ahead);
    }
}
