//! # rfid-sim — mobile-RFID warehouse simulator
//!
//! The substrate substituting for the paper's collected RFID traces
//! (§2.1): a warehouse of shelves (tags at known positions — the §4.2
//! reference objects) and tagged objects, scanned by a mobile reader with
//! a logistic distance/angle sensing model. Ground truth is retained so
//! inference error (Figure 3a) can be measured exactly.
//!
//! - [`world`] — shelf grid, objects (weight/type metadata for Q1/Q2),
//!   occasional shelf-to-shelf moves.
//! - [`reader`] — patrol trajectories and noisy reported pose.
//! - [`sensing`] — logistic read-probability model, `clean`/`noisy`
//!   regimes.
//! - [`trace`] — scan loop producing `RawReading`s + truth snapshots.
//! - [`temperature`] — the Q2 temperature field and sensor stream.

pub mod reader;
pub mod sensing;
pub mod temperature;
pub mod trace;
pub mod world;

pub use reader::{MobileReader, Trajectory};
pub use sensing::SensingModel;
pub use temperature::{HotSpot, TempField, TempReading, TempSensorGrid};
pub use trace::{RawReading, Scan, TagRef, TraceConfig, TraceGenerator, TruthSnapshot};
pub use world::{ObjectKind, ObjectState, Shelf, World, WorldConfig};
