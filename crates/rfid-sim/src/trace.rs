//! Trace generation: the raw RFID reading stream plus retained ground
//! truth (the simulator's stand-in for the paper's collected traces).

use crate::reader::{MobileReader, Trajectory};
use crate::sensing::SensingModel;
use crate::world::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What a single reading refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagRef {
    Object(u32),
    /// Shelf tags have known positions — the reference objects of §4.2.
    Shelf(u32),
}

/// One raw reading from the mobile reader: "the tag ids of observed
/// objects, the tag ids of observed shelves, and optionally the location
/// of the reader".
#[derive(Debug, Clone)]
pub struct RawReading {
    /// Milliseconds since trace start.
    pub ts: u64,
    pub tag: TagRef,
    /// Noisy reported reader pose, if reported.
    pub reader_pos: Option<[f64; 3]>,
}

/// Ground truth snapshot for evaluating inference error.
#[derive(Debug, Clone)]
pub struct TruthSnapshot {
    pub ts: u64,
    /// True (x, y) of every object, indexed by object id.
    pub object_xy: Vec<[f64; 2]>,
    /// True reader position.
    pub reader_pos: [f64; 3],
}

/// Trace generator configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub world: WorldConfig,
    pub sensing: SensingModel,
    /// Scan interval (ms).
    pub scan_interval_ms: u64,
    /// Probability the reader omits its pose from a scan.
    pub pose_dropout: f64,
    /// RNG seed for sensing draws.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            world: WorldConfig::default(),
            sensing: SensingModel::noisy(),
            scan_interval_ms: 200,
            pose_dropout: 0.1,
            seed: 7,
        }
    }
}

/// Generates scans lazily; owns the world and the reader.
pub struct TraceGenerator {
    pub world: World,
    reader: MobileReader,
    sensing: SensingModel,
    cfg: TraceConfig,
    rng: StdRng,
    t: u64,
    prev_reader: [f64; 3],
}

/// The output of one scan.
#[derive(Debug, Clone)]
pub struct Scan {
    pub readings: Vec<RawReading>,
    pub truth: TruthSnapshot,
}

impl TraceGenerator {
    pub fn new(cfg: TraceConfig) -> Self {
        let world = World::new(cfg.world.clone());
        let (w, d) = world.extent();
        let reader = MobileReader::new(Trajectory::Patrol {
            width: w,
            depth: d,
            aisle_step: cfg.world.shelf_spacing * 2.0,
            speed: 2.0,
        });
        let prev_reader = reader.true_pos();
        TraceGenerator {
            world,
            reader,
            sensing: cfg.sensing,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            t: 0,
            prev_reader,
        }
    }

    /// Produce the next scan: advance world + reader, then draw readings
    /// for every tag within range.
    pub fn next_scan(&mut self) -> Scan {
        self.world.step();
        let before = self.reader.true_pos();
        self.reader.step();
        let pos = self.reader.true_pos();
        // Facing = direction of travel (fallback +x when stationary).
        let mut facing = [pos[0] - before[0], pos[1] - before[1], 0.0];
        if facing[0].abs() + facing[1].abs() < 1e-9 {
            facing = [1.0, 0.0, 0.0];
        }
        self.prev_reader = pos;

        let reported = self
            .reader
            .reported_pos(self.cfg.pose_dropout, &mut self.rng);
        let mut readings = Vec::new();
        for o in self.world.objects() {
            let p = self.sensing.read_probability_at(&pos, &facing, &o.pos);
            if rand::Rng::gen::<f64>(&mut self.rng) < p {
                readings.push(RawReading {
                    ts: self.t,
                    tag: TagRef::Object(o.id),
                    reader_pos: reported,
                });
            }
        }
        for s in self.world.shelves() {
            let p = self.sensing.read_probability_at(&pos, &facing, &s.pos);
            if rand::Rng::gen::<f64>(&mut self.rng) < p {
                readings.push(RawReading {
                    ts: self.t,
                    tag: TagRef::Shelf(s.id),
                    reader_pos: reported,
                });
            }
        }

        let truth = TruthSnapshot {
            ts: self.t,
            object_xy: self
                .world
                .objects()
                .iter()
                .map(|o| [o.pos[0], o.pos[1]])
                .collect(),
            reader_pos: pos,
        };
        self.t += self.cfg.scan_interval_ms;
        Scan { readings, truth }
    }

    /// Generate `n` scans eagerly.
    pub fn scans(&mut self, n: usize) -> Vec<Scan> {
        (0..n).map(|_| self.next_scan()).collect()
    }

    pub fn sensing(&self) -> &SensingModel {
        &self.sensing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            world: WorldConfig {
                shelf_rows: 4,
                shelf_cols: 4,
                num_objects: 50,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn scans_produce_readings_and_truth() {
        let mut gen = TraceGenerator::new(small_cfg());
        let scans = gen.scans(50);
        assert_eq!(scans.len(), 50);
        let total_readings: usize = scans.iter().map(|s| s.readings.len()).sum();
        assert!(
            total_readings > 50,
            "reader should observe tags while patrolling"
        );
        for s in &scans {
            assert_eq!(s.truth.object_xy.len(), 50);
        }
    }

    #[test]
    fn timestamps_advance_by_interval() {
        let mut gen = TraceGenerator::new(small_cfg());
        let scans = gen.scans(3);
        assert_eq!(scans[0].truth.ts, 0);
        assert_eq!(scans[1].truth.ts, 200);
        assert_eq!(scans[2].truth.ts, 400);
    }

    #[test]
    fn only_nearby_tags_read() {
        let mut gen = TraceGenerator::new(small_cfg());
        for s in gen.scans(30) {
            let reader = s.truth.reader_pos;
            for r in &s.readings {
                if let TagRef::Object(id) = r.tag {
                    let p = s.truth.object_xy[id as usize];
                    let d = ((p[0] - reader[0]).powi(2) + (p[1] - reader[1]).powi(2)).sqrt();
                    assert!(d <= 21.0, "read at {d:.1} ft exceeds range");
                }
            }
        }
    }

    #[test]
    fn noisy_model_misses_more_than_clean() {
        let mut noisy_cfg = small_cfg();
        noisy_cfg.sensing = SensingModel::noisy();
        let mut clean_cfg = small_cfg();
        clean_cfg.sensing = SensingModel::clean();
        let noisy: usize = TraceGenerator::new(noisy_cfg)
            .scans(100)
            .iter()
            .map(|s| s.readings.len())
            .sum();
        let clean: usize = TraceGenerator::new(clean_cfg)
            .scans(100)
            .iter()
            .map(|s| s.readings.len())
            .sum();
        assert!(
            noisy < clean,
            "noisy trace ({noisy}) should have fewer reads than clean ({clean})"
        );
    }

    #[test]
    fn shelf_tags_appear_in_trace() {
        let mut gen = TraceGenerator::new(small_cfg());
        let shelf_reads: usize = gen
            .scans(200)
            .iter()
            .flat_map(|s| s.readings.iter())
            .filter(|r| matches!(r.tag, TagRef::Shelf(_)))
            .count();
        assert!(shelf_reads > 10, "reference tags must be observed (§4.2)");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<usize> = TraceGenerator::new(small_cfg())
            .scans(20)
            .iter()
            .map(|s| s.readings.len())
            .collect();
        let b: Vec<usize> = TraceGenerator::new(small_cfg())
            .scans(20)
            .iter()
            .map(|s| s.readings.len())
            .collect();
        assert_eq!(a, b);
    }
}
