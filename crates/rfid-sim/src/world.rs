//! The warehouse world: shelves at known positions, tagged objects, and
//! ground-truth object state (§2.1).
//!
//! Distances are in **feet** (the paper's Figure 3 reports inference
//! error in feet). Shelf tags are at known locations — they double as
//! the *reference objects* of §4.2 used to probe inference accuracy
//! online. Objects "usually stay on the same shelf but sometimes move
//! from one shelf to another"; a move leaves the particle cloud bimodal,
//! motivating the §4.3 mixture conversion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Object category (Q2 selects `flammable` objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    Flammable,
    Fragile,
    Standard,
}

impl ObjectKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ObjectKind::Flammable => "flammable",
            ObjectKind::Fragile => "fragile",
            ObjectKind::Standard => "standard",
        }
    }
}

/// A shelf with a tag at a known location.
#[derive(Debug, Clone)]
pub struct Shelf {
    pub id: u32,
    /// Tag position (x, y, z) in feet.
    pub pos: [f64; 3],
}

/// A tagged object with ground-truth state.
#[derive(Debug, Clone)]
pub struct ObjectState {
    pub id: u32,
    pub shelf: u32,
    /// True position (x, y, z) in feet.
    pub pos: [f64; 3],
    /// Weight in pounds (Q1 sums weights per square-foot area).
    pub weight: f64,
    pub kind: ObjectKind,
}

/// World configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Shelf grid dimensions.
    pub shelf_rows: usize,
    pub shelf_cols: usize,
    /// Spacing between shelf centres (ft).
    pub shelf_spacing: f64,
    /// Number of tagged objects.
    pub num_objects: usize,
    /// Per-scan probability that an object moves to another shelf.
    pub move_prob: f64,
    /// Std-dev of an object's offset from its shelf centre (ft).
    pub placement_jitter: f64,
    /// RNG seed (world generation and motion are deterministic given it).
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            shelf_rows: 10,
            shelf_cols: 10,
            shelf_spacing: 6.0,
            num_objects: 200,
            move_prob: 0.002,
            placement_jitter: 0.8,
            seed: 42,
        }
    }
}

/// The simulated warehouse.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    shelves: Vec<Shelf>,
    objects: Vec<ObjectState>,
    rng: StdRng,
    /// Count of shelf-to-shelf moves so far (test/diagnostic hook).
    pub moves: u64,
}

impl World {
    pub fn new(config: WorldConfig) -> World {
        assert!(config.shelf_rows >= 1 && config.shelf_cols >= 1);
        assert!(config.num_objects >= 1);
        assert!((0.0..=1.0).contains(&config.move_prob));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut shelves = Vec::with_capacity(config.shelf_rows * config.shelf_cols);
        for r in 0..config.shelf_rows {
            for c in 0..config.shelf_cols {
                shelves.push(Shelf {
                    id: (r * config.shelf_cols + c) as u32,
                    pos: [
                        (c as f64 + 0.5) * config.shelf_spacing,
                        (r as f64 + 0.5) * config.shelf_spacing,
                        4.0, // tag height (ft)
                    ],
                });
            }
        }
        let mut objects = Vec::with_capacity(config.num_objects);
        for id in 0..config.num_objects {
            let shelf = rng.gen_range(0..shelves.len());
            let pos = Self::place_on(&shelves[shelf], config.placement_jitter, &mut rng);
            let kind = match rng.gen_range(0..10) {
                0..=1 => ObjectKind::Flammable,
                2..=3 => ObjectKind::Fragile,
                _ => ObjectKind::Standard,
            };
            objects.push(ObjectState {
                id: id as u32,
                shelf: shelves[shelf].id,
                pos,
                weight: 5.0 + rng.gen::<f64>() * 45.0,
                kind,
            });
        }
        World {
            config,
            shelves,
            objects,
            rng,
            moves: 0,
        }
    }

    fn place_on(shelf: &Shelf, jitter: f64, rng: &mut StdRng) -> [f64; 3] {
        let mut gauss = || {
            // Box–Muller via two uniforms (cheap, adequate here).
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        [
            shelf.pos[0] + jitter * gauss(),
            shelf.pos[1] + jitter * gauss(),
            1.0 + 2.5 * rng.gen::<f64>(), // shelf level
        ]
    }

    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    pub fn shelves(&self) -> &[Shelf] {
        &self.shelves
    }

    pub fn objects(&self) -> &[ObjectState] {
        &self.objects
    }

    pub fn object(&self, id: u32) -> &ObjectState {
        &self.objects[id as usize]
    }

    /// Extent of the floor area (x_max, y_max) in feet.
    pub fn extent(&self) -> (f64, f64) {
        (
            self.config.shelf_cols as f64 * self.config.shelf_spacing,
            self.config.shelf_rows as f64 * self.config.shelf_spacing,
        )
    }

    /// Advance one scan step: each object independently moves to a random
    /// other shelf with probability `move_prob`.
    pub fn step(&mut self) {
        let n_shelves = self.shelves.len();
        for i in 0..self.objects.len() {
            if self.rng.gen::<f64>() < self.config.move_prob {
                let new_shelf = self.rng.gen_range(0..n_shelves);
                let pos = Self::place_on(
                    &self.shelves[new_shelf],
                    self.config.placement_jitter,
                    &mut self.rng,
                );
                self.objects[i].shelf = self.shelves[new_shelf].id;
                self.objects[i].pos = pos;
                self.moves += 1;
            }
        }
    }

    /// Q1's `area()` function: the square-foot grid cell of a position.
    pub fn area_of(&self, pos: &[f64]) -> i64 {
        let (w, _) = self.extent();
        let cells_per_row = w.ceil() as i64;
        let cx = pos[0].floor().max(0.0) as i64;
        let cy = pos[1].floor().max(0.0) as i64;
        cy * cells_per_row + cx
    }

    /// Q1's `weight()` function.
    pub fn weight_of(&self, tag_id: u32) -> f64 {
        self.objects[tag_id as usize].weight
    }

    /// Q2's `object_type()` function.
    pub fn object_type(&self, tag_id: u32) -> ObjectKind {
        self.objects[tag_id as usize].kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_layout_deterministic() {
        let a = World::new(WorldConfig::default());
        let b = World::new(WorldConfig::default());
        assert_eq!(a.shelves().len(), 100);
        assert_eq!(a.objects().len(), 200);
        assert_eq!(a.object(0).pos, b.object(0).pos);
    }

    #[test]
    fn shelves_form_grid() {
        let w = World::new(WorldConfig {
            shelf_rows: 2,
            shelf_cols: 3,
            shelf_spacing: 10.0,
            ..Default::default()
        });
        assert_eq!(w.shelves().len(), 6);
        assert_eq!(w.shelves()[0].pos[0], 5.0);
        assert_eq!(w.shelves()[1].pos[0], 15.0);
        assert_eq!(w.shelves()[3].pos[1], 15.0);
        assert_eq!(w.extent(), (30.0, 20.0));
    }

    #[test]
    fn objects_near_their_shelves() {
        let w = World::new(WorldConfig::default());
        for o in w.objects() {
            let shelf = &w.shelves()[o.shelf as usize];
            let dx = o.pos[0] - shelf.pos[0];
            let dy = o.pos[1] - shelf.pos[1];
            let d = (dx * dx + dy * dy).sqrt();
            assert!(d < 6.0, "object {} is {d:.1} ft from its shelf", o.id);
        }
    }

    #[test]
    fn motion_respects_move_probability() {
        let mut w = World::new(WorldConfig {
            move_prob: 0.5,
            num_objects: 1000,
            ..Default::default()
        });
        w.step();
        // ≈ 500 moves expected; allow generous slack.
        assert!(w.moves > 350 && w.moves < 650, "moves = {}", w.moves);

        let mut still = World::new(WorldConfig {
            move_prob: 0.0,
            ..Default::default()
        });
        let before = still.object(3).pos;
        still.step();
        assert_eq!(still.object(3).pos, before);
        assert_eq!(still.moves, 0);
    }

    #[test]
    fn area_function_distinct_cells() {
        let w = World::new(WorldConfig::default());
        let a = w.area_of(&[0.5, 0.5, 0.0]);
        let b = w.area_of(&[1.5, 0.5, 0.0]);
        let c = w.area_of(&[0.5, 1.5, 0.0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Same cell for nearby points.
        assert_eq!(a, w.area_of(&[0.9, 0.9, 2.0]));
    }

    #[test]
    fn metadata_functions() {
        let w = World::new(WorldConfig::default());
        let weight = w.weight_of(5);
        assert!((5.0..=50.0).contains(&weight));
        let _ = w.object_type(5); // must not panic
        let flammable = w
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Flammable)
            .count();
        assert!(flammable > 10, "≈20% of 200 objects should be flammable");
    }
}
