//! The mobile RFID reader: trajectory and noisy reported pose (§2.1).

use rand::rngs::StdRng;
use rand::Rng;

/// Reader trajectory model.
#[derive(Debug, Clone)]
pub enum Trajectory {
    /// Serpentine patrol over the floor: sweeps each aisle in turn.
    Patrol {
        width: f64,
        depth: f64,
        /// Aisle spacing (ft).
        aisle_step: f64,
        /// Travel speed (ft per scan tick).
        speed: f64,
    },
    /// Fixed position (degenerates to a static reader).
    Fixed([f64; 3]),
}

/// The mobile reader.
#[derive(Debug, Clone)]
pub struct MobileReader {
    trajectory: Trajectory,
    /// Height the reader is carried at (ft).
    pub height: f64,
    /// Std-dev of the reported-position noise (ft); the reader "optionally"
    /// reports its own (noisy) location.
    pub pose_noise: f64,
    /// Maximum read range (ft) — "can be twenty feet away in any direction".
    pub max_range: f64,
    /// Distance travelled along the patrol (internal clock).
    travelled: f64,
}

impl MobileReader {
    pub fn new(trajectory: Trajectory) -> Self {
        MobileReader {
            trajectory,
            height: 4.0,
            pose_noise: 0.5,
            max_range: 20.0,
            travelled: 0.0,
        }
    }

    /// True position at the current tick.
    pub fn true_pos(&self) -> [f64; 3] {
        match &self.trajectory {
            Trajectory::Fixed(p) => *p,
            Trajectory::Patrol {
                width,
                depth,
                aisle_step,
                ..
            } => {
                // Serpentine: go +x across, step +y, come back −x, …
                let lap = 2.0 * width + 2.0 * aisle_step;
                let n_aisles = (depth / aisle_step).max(1.0).floor();
                let total = lap * n_aisles;
                let s = self.travelled % total;
                let aisle = (s / lap).floor();
                let within = s % lap;
                let y_base = (aisle * 2.0 * aisle_step + 0.5 * aisle_step).min(depth - 0.5);
                let (x, y) = if within < *width {
                    (within, y_base)
                } else if within < width + aisle_step {
                    (*width, y_base + (within - width))
                } else if within < 2.0 * width + aisle_step {
                    (width - (within - width - aisle_step), y_base + aisle_step)
                } else {
                    (
                        0.0,
                        y_base + aisle_step + (within - 2.0 * width - aisle_step),
                    )
                };
                [x, y, self.height]
            }
        }
    }

    /// Advance one scan tick.
    pub fn step(&mut self) {
        if let Trajectory::Patrol { speed, .. } = &self.trajectory {
            self.travelled += speed;
        }
    }

    /// The reported (noisy) pose, or `None` with probability
    /// `dropout` (readers sometimes omit their location).
    pub fn reported_pos(&self, dropout: f64, rng: &mut StdRng) -> Option<[f64; 3]> {
        if rng.gen::<f64>() < dropout {
            return None;
        }
        let p = self.true_pos();
        let mut gauss = || {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        Some([
            p[0] + self.pose_noise * gauss(),
            p[1] + self.pose_noise * gauss(),
            p[2] + self.pose_noise * gauss(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn patrol() -> MobileReader {
        MobileReader::new(Trajectory::Patrol {
            width: 60.0,
            depth: 60.0,
            aisle_step: 12.0,
            speed: 2.0,
        })
    }

    #[test]
    fn fixed_reader_stays_put() {
        let mut r = MobileReader::new(Trajectory::Fixed([1.0, 2.0, 3.0]));
        let p0 = r.true_pos();
        r.step();
        assert_eq!(r.true_pos(), p0);
    }

    #[test]
    fn patrol_covers_the_floor() {
        let mut r = patrol();
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for _ in 0..2000 {
            let p = r.true_pos();
            min_x = min_x.min(p[0]);
            max_x = max_x.max(p[0]);
            min_y = min_y.min(p[1]);
            max_y = max_y.max(p[1]);
            assert!(p[0] >= -1e-9 && p[0] <= 60.0 + 1e-9, "x = {}", p[0]);
            r.step();
        }
        assert!(max_x - min_x > 40.0, "sweeps most of the width");
        assert!(max_y - min_y > 20.0, "visits multiple aisles");
    }

    #[test]
    fn patrol_moves_each_tick() {
        let mut r = patrol();
        let a = r.true_pos();
        r.step();
        let b = r.true_pos();
        assert!((a[0] - b[0]).abs() + (a[1] - b[1]).abs() > 0.5);
    }

    #[test]
    fn reported_pose_noisy_but_unbiased() {
        let r = MobileReader::new(Trajectory::Fixed([10.0, 10.0, 4.0]));
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = [0.0f64; 3];
        let n = 5000;
        for _ in 0..n {
            let p = r.reported_pos(0.0, &mut rng).unwrap();
            for (s, v) in sum.iter_mut().zip(p) {
                *s += v;
            }
        }
        for (i, want) in [10.0, 10.0, 4.0].iter().enumerate() {
            assert!((sum[i] / n as f64 - want).abs() < 0.05);
        }
    }

    #[test]
    fn dropout_suppresses_reports() {
        let r = MobileReader::new(Trajectory::Fixed([0.0, 0.0, 4.0]));
        let mut rng = StdRng::seed_from_u64(2);
        let reported = (0..1000)
            .filter(|_| r.reported_pos(0.3, &mut rng).is_some())
            .count();
        assert!((650..=750).contains(&reported), "reported = {reported}");
    }
}
