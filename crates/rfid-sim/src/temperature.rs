//! Synthetic temperature field and sensor stream for Q2 (the
//! `TempStream` of §2.1: tuples `(time, (x,y,z), temp)`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hot spot (e.g. an incipient fire) that grows over time.
#[derive(Debug, Clone)]
pub struct HotSpot {
    pub center: [f64; 2],
    /// Peak excess temperature (°C) at full development.
    pub peak: f64,
    /// Spatial spread (ft).
    pub sigma: f64,
    /// Time (ms) at which the hot spot starts developing.
    pub onset_ms: u64,
    /// Time (ms) it takes to reach full strength after onset.
    pub ramp_ms: u64,
}

/// The ambient temperature field.
#[derive(Debug, Clone)]
pub struct TempField {
    /// Base temperature (°C).
    pub ambient: f64,
    pub hot_spots: Vec<HotSpot>,
}

impl TempField {
    pub fn ambient_only(ambient: f64) -> Self {
        TempField {
            ambient,
            hot_spots: Vec::new(),
        }
    }

    /// True temperature at (x, y) and time t.
    pub fn at(&self, xy: [f64; 2], t_ms: u64) -> f64 {
        let mut temp = self.ambient;
        for h in &self.hot_spots {
            if t_ms < h.onset_ms {
                continue;
            }
            let ramp = ((t_ms - h.onset_ms) as f64 / h.ramp_ms.max(1) as f64).min(1.0);
            let dx = xy[0] - h.center[0];
            let dy = xy[1] - h.center[1];
            let spatial = (-(dx * dx + dy * dy) / (2.0 * h.sigma * h.sigma)).exp();
            temp += h.peak * ramp * spatial;
        }
        temp
    }
}

/// One temperature sensor reading.
#[derive(Debug, Clone)]
pub struct TempReading {
    pub ts: u64,
    /// Sensor position (x, y, z) — known exactly (fixed sensors).
    pub pos: [f64; 3],
    /// Observed temperature (noisy).
    pub temp: f64,
    /// Sensor noise std-dev (the uncertainty the T operator attaches).
    pub noise_sd: f64,
}

/// A grid of fixed temperature sensors sampling the field.
pub struct TempSensorGrid {
    field: TempField,
    positions: Vec<[f64; 3]>,
    noise_sd: f64,
    interval_ms: u64,
    rng: StdRng,
    t: u64,
}

impl TempSensorGrid {
    pub fn new(
        field: TempField,
        extent: (f64, f64),
        spacing: f64,
        noise_sd: f64,
        interval_ms: u64,
        seed: u64,
    ) -> Self {
        assert!(spacing > 0.0 && noise_sd >= 0.0 && interval_ms > 0);
        let mut positions = Vec::new();
        let (w, d) = extent;
        let nx = (w / spacing).ceil() as usize;
        let ny = (d / spacing).ceil() as usize;
        for iy in 0..ny {
            for ix in 0..nx {
                positions.push([
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    8.0, // ceiling-mounted
                ]);
            }
        }
        TempSensorGrid {
            field,
            positions,
            noise_sd,
            interval_ms,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }

    pub fn num_sensors(&self) -> usize {
        self.positions.len()
    }

    pub fn field(&self) -> &TempField {
        &self.field
    }

    /// One sweep: a reading from every sensor at the current tick.
    pub fn next_sweep(&mut self) -> Vec<TempReading> {
        let t = self.t;
        let out = self
            .positions
            .iter()
            .map(|&pos| {
                let truth = self.field.at([pos[0], pos[1]], t);
                let noise = {
                    let u1: f64 = self.rng.gen::<f64>().max(1e-12);
                    let u2: f64 = self.rng.gen::<f64>();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                TempReading {
                    ts: t,
                    pos,
                    temp: truth + self.noise_sd * noise,
                    noise_sd: self.noise_sd,
                }
            })
            .collect();
        self.t += self.interval_ms;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_with_fire() -> TempField {
        TempField {
            ambient: 20.0,
            hot_spots: vec![HotSpot {
                center: [10.0, 10.0],
                peak: 60.0,
                sigma: 5.0,
                onset_ms: 1000,
                ramp_ms: 4000,
            }],
        }
    }

    #[test]
    fn ambient_before_onset() {
        let f = field_with_fire();
        assert_eq!(f.at([10.0, 10.0], 0), 20.0);
        assert_eq!(f.at([10.0, 10.0], 999), 20.0);
    }

    #[test]
    fn hot_spot_ramps_and_peaks() {
        let f = field_with_fire();
        let mid = f.at([10.0, 10.0], 3000);
        let full = f.at([10.0, 10.0], 10_000);
        assert!(mid > 20.0 && mid < full);
        assert!((full - 80.0).abs() < 1e-9, "20 ambient + 60 peak");
    }

    #[test]
    fn heat_decays_with_distance() {
        let f = field_with_fire();
        let near = f.at([10.0, 10.0], 10_000);
        let mid = f.at([15.0, 10.0], 10_000);
        let far = f.at([40.0, 40.0], 10_000);
        assert!(near > mid && mid > far);
        assert!((far - 20.0).abs() < 0.5, "far field is ambient");
    }

    #[test]
    fn sensor_grid_covers_extent() {
        let g = TempSensorGrid::new(
            TempField::ambient_only(20.0),
            (60.0, 60.0),
            12.0,
            0.5,
            1000,
            1,
        );
        assert_eq!(g.num_sensors(), 25);
    }

    #[test]
    fn sweeps_advance_time_and_add_noise() {
        let mut g = TempSensorGrid::new(
            TempField::ambient_only(20.0),
            (24.0, 24.0),
            12.0,
            0.5,
            1000,
            2,
        );
        let s0 = g.next_sweep();
        let s1 = g.next_sweep();
        assert_eq!(s0[0].ts, 0);
        assert_eq!(s1[0].ts, 1000);
        // Noise present but small.
        let mean: f64 = s0.iter().map(|r| r.temp).sum::<f64>() / s0.len() as f64;
        assert!((mean - 20.0).abs() < 1.0);
        assert!(s0.iter().any(|r| (r.temp - 20.0).abs() > 1e-6));
    }

    #[test]
    fn fire_visible_in_readings() {
        let mut g = TempSensorGrid::new(field_with_fire(), (24.0, 24.0), 12.0, 0.5, 1000, 3);
        for _ in 0..9 {
            g.next_sweep();
        }
        let sweep = g.next_sweep(); // t = 9000, fire fully developed
        let hottest = sweep
            .iter()
            .max_by(|a, b| a.temp.partial_cmp(&b.temp).unwrap())
            .unwrap();
        assert!(hottest.temp > 50.0, "hottest = {}", hottest.temp);
        // The hottest sensor is the one nearest the fire at (10,10).
        let d = ((hottest.pos[0] - 10.0).powi(2) + (hottest.pos[1] - 10.0).powi(2)).sqrt();
        assert!(d < 12.0);
    }
}
