//! E7 — §4.3 conversion bench: KL Gaussian fit (two scans) vs weighted EM
//! mixture fits with AIC/BIC selection, on unimodal and bimodal particle
//! clouds.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ustream_prob::dist::GaussianMixture;
use ustream_prob::fit::{fit_gmm_weighted, select_gmm, EmConfig, ModelSelection};
use ustream_prob::samples::WeightedSamples;

fn cloud(mix: &GaussianMixture, n: usize, seed: u64) -> WeightedSamples {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightedSamples::unweighted((0..n).map(|_| mix.sample(&mut rng)).collect())
}

fn bench_gmm(c: &mut Criterion) {
    let unimodal = cloud(&GaussianMixture::from_triples(&[(1.0, 0.0, 1.0)]), 200, 1);
    // The §4.3 scenario: an object that may have moved shelves.
    let bimodal = cloud(
        &GaussianMixture::from_triples(&[(0.6, 0.0, 0.8), (0.4, 12.0, 0.8)]),
        200,
        2,
    );

    let mut group = c.benchmark_group("gmm_fit_200_samples");
    group.sample_size(20);

    group.bench_function("kl_gaussian_two_scans", |b| {
        b.iter(|| bimodal.fit_gaussian())
    });
    group.bench_function("em_k2_bimodal", |b| {
        b.iter(|| fit_gmm_weighted(&bimodal, 2, &EmConfig::default()))
    });
    group.bench_function("bic_select_unimodal", |b| {
        b.iter(|| select_gmm(&unimodal, 3, ModelSelection::Bic, &EmConfig::default()))
    });
    group.bench_function("bic_select_bimodal", |b| {
        b.iter(|| select_gmm(&bimodal, 3, ModelSelection::Bic, &EmConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_gmm);
criterion_main!(benches);
