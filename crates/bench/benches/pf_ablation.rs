//! Ablation bench for the §4.1 optimization ladder: factored filtering
//! with and without the spatial index and particle compression, at a
//! fixed population.

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_sim::TagRef;
use ustream_bench::{fig3_setup, filter_config};
use ustream_inference::FactoredFilter;

/// One pre-generated scan: reader position and the object ids it read.
type PreparedScan = ([f64; 3], Vec<u32>);

fn prepared(
    num_objects: usize,
    spatial: bool,
    compression: bool,
) -> (FactoredFilter, Vec<PreparedScan>) {
    let mut setup = fig3_setup(num_objects, 42);
    let cfg = filter_config(&setup.gen, 100, spatial, compression, 7);
    let mut filter = FactoredFilter::new(num_objects, cfg);
    let mut scans = Vec::new();
    for _ in 0..50 {
        let scan = setup.gen.next_scan();
        let read: Vec<u32> = scan
            .readings
            .iter()
            .filter_map(|r| match r.tag {
                TagRef::Object(id) => Some(id),
                _ => None,
            })
            .collect();
        filter.process_scan(scan.truth.reader_pos, &read);
        scans.push((scan.truth.reader_pos, read));
    }
    (filter, scans)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pf_ablation_n2000");
    group.sample_size(10);
    let n = 2_000;

    for (label, spatial, compression) in [
        ("no_index_no_compression", false, false),
        ("index_only", true, false),
        ("index_and_compression", true, true),
    ] {
        let (mut filter, scans) = prepared(n, spatial, compression);
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let (pos, read) = &scans[i % scans.len()];
                i += 1;
                filter.process_scan(*pos, read)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
