//! Criterion bench for Figure 3(b): particle-filter cost per scan as the
//! object population and particle budget vary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_sim::TagRef;
use ustream_bench::{fig3_setup, filter_config};
use ustream_inference::FactoredFilter;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_pf_scan");
    group.sample_size(10);

    for &num_objects in &[100usize, 1000] {
        for &particles in &[50usize, 200] {
            // Pre-generate a warmed filter and a batch of scans.
            let mut setup = fig3_setup(num_objects, 42);
            let cfg = filter_config(&setup.gen, particles, true, true, 7);
            let mut filter = FactoredFilter::new(num_objects, cfg);
            let mut scans = Vec::new();
            for _ in 0..60 {
                let scan = setup.gen.next_scan();
                let read: Vec<u32> = scan
                    .readings
                    .iter()
                    .filter_map(|r| match r.tag {
                        TagRef::Object(id) => Some(id),
                        _ => None,
                    })
                    .collect();
                filter.process_scan(scan.truth.reader_pos, &read);
                scans.push((scan.truth.reader_pos, read));
            }
            group.bench_with_input(
                BenchmarkId::new(format!("n{num_objects}"), particles),
                &particles,
                |b, _| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let (pos, read) = &scans[i % scans.len()];
                        i += 1;
                        filter.process_scan(*pos, read)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
