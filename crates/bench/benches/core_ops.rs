//! Criterion bench for the core engine's per-tuple operator costs:
//! probabilistic selection, window maintenance, and the aggregation
//! strategies as seen through the operator (not just the math kernels).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use ustream_core::ops::aggregate::{AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate};
use ustream_core::ops::select::{Predicate, Select};
use ustream_core::ops::Operator;
use ustream_core::schema::{DataType, Schema};
use ustream_core::tuple::Tuple;
use ustream_core::updf::Updf;
use ustream_core::value::{GroupKey, Value};
use ustream_prob::dist::Dist;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

fn tuples(n: usize) -> Vec<Tuple> {
    let s = schema();
    (0..n)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.3,
                    ))),
                ],
                i as u64 * 10,
            )
        })
        .collect()
}

fn bench_core_ops(c: &mut Criterion) {
    let batch = tuples(1_000);
    let mut group = c.benchmark_group("core_ops_1k_tuples");
    group.sample_size(20);

    group.bench_function("select_prob_above_conditioning", |b| {
        b.iter_batched(
            || {
                (
                    Select::new(Predicate::UncertainAbove("x".into(), 5.0), 0.05),
                    batch.clone(),
                )
            },
            |(mut sel, tuples)| {
                let mut kept = 0usize;
                for t in tuples {
                    kept += sel.process(0, t).len();
                }
                kept
            },
            BatchSize::SmallInput,
        )
    });

    for (label, strategy) in [
        ("agg_clt", Strategy::Clt),
        (
            "agg_cf_approx",
            Strategy::CfApprox {
                skew_threshold: 0.3,
                kurt_threshold: 1.0,
            },
        ),
        ("agg_exact", Strategy::ExactParametric),
    ] {
        let strategy_clone = match &strategy {
            Strategy::Clt => Strategy::Clt,
            Strategy::ExactParametric => Strategy::ExactParametric,
            Strategy::CfApprox { .. } => Strategy::CfApprox {
                skew_threshold: 0.3,
                kurt_threshold: 1.0,
            },
            _ => unreachable!(),
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    (
                        WindowedAggregate::new(
                            WindowKind::Count(100),
                            |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
                            vec![AggSpec {
                                field: "x".into(),
                                func: AggFunc::Sum,
                                out: "s".into(),
                                strategy: match &strategy_clone {
                                    Strategy::Clt => Strategy::Clt,
                                    Strategy::ExactParametric => Strategy::ExactParametric,
                                    Strategy::CfApprox { .. } => Strategy::CfApprox {
                                        skew_threshold: 0.3,
                                        kurt_threshold: 1.0,
                                    },
                                    _ => unreachable!(),
                                },
                            }],
                        ),
                        batch.clone(),
                    )
                },
                |(mut agg, tuples)| {
                    let mut emitted = 0usize;
                    for t in tuples {
                        emitted += agg.process(0, t).len();
                    }
                    emitted + agg.flush().len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.bench_function("sliding_window_overlap_4x", |b| {
        b.iter_batched(
            || {
                (
                    WindowedAggregate::new(
                        WindowKind::Sliding {
                            range_ms: 4_000,
                            slide_ms: 1_000,
                        },
                        |_t: &Tuple| GroupKey::Unit,
                        vec![AggSpec {
                            field: "x".into(),
                            func: AggFunc::Sum,
                            out: "s".into(),
                            strategy: Strategy::Clt,
                        }],
                    ),
                    batch.clone(),
                )
            },
            |(mut agg, tuples)| {
                let mut emitted = 0usize;
                for t in tuples {
                    emitted += agg.process(0, t).len();
                }
                emitted + agg.flush().len()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_core_ops);
criterion_main!(benches);
