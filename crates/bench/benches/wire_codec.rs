//! Wire-codec throughput: encoding and decoding batches of uncertain
//! tuples through the ingest server's frame payload format.
//!
//! Two workloads bracket the serving hot path:
//!
//! - `parametric` — the common case: every tuple carries one compact
//!   Gaussian payload (what the paper's §4.3 conversion policies emit
//!   onto the stream).
//! - `mixed` — one of each `Updf` family in rotation (parametric /
//!   mixture / samples / histogram / multivariate), the worst realistic
//!   payload mix.
//!
//! Each workload is decoded twice: `decode` materializes row tuples
//! (`decode_tuples`), `decode_columnar` fills the columnar batch layout
//! in place (`decode_batch`).
//!
//! `BENCH_wire_codec.json` at the repo root records the medians (of 5
//! bench repetitions, same format as `BENCH_executor_throughput.json`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;
use ustream_core::schema::{DataType, Schema};
use ustream_core::{Tuple, Updf, Value};
use ustream_prob::dist::{Dist, GaussianMixture, MvGaussian};
use ustream_prob::histogram::HistogramPdf;
use ustream_prob::samples::WeightedSamples;
use ustream_server::wire;

const N_TUPLES: usize = 8_192;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("tag", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

/// All-Gaussian payloads: the compact-parametric serving fast path.
fn parametric_tuples() -> Vec<Tuple> {
    let s = schema();
    (0..N_TUPLES)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.25,
                    ))),
                ],
                i as u64,
            )
        })
        .collect()
}

/// Every `Updf` family in rotation: the worst realistic payload mix.
fn mixed_tuples() -> Vec<Tuple> {
    let s = schema();
    (0..N_TUPLES)
        .map(|i| {
            let x = match i % 5 {
                0 => Updf::Parametric(Dist::gaussian(i as f64, 1.0)),
                1 => Updf::Parametric(Dist::Mixture(GaussianMixture::from_triples(&[
                    (0.4, -1.0, 0.5),
                    (0.6, 2.0, 1.0),
                ]))),
                2 => Updf::Samples(WeightedSamples::unweighted(
                    (0..32).map(|k| (i + k) as f64 * 0.1).collect(),
                )),
                3 => Updf::Histogram(HistogramPdf::from_masses(
                    0.0,
                    0.25,
                    (1..33).map(|k| k as f64).collect(),
                )),
                _ => Updf::Mv(MvGaussian::new(
                    vec![1.0, -1.0, 0.5],
                    vec![1.0, 0.2, 0.1, 0.2, 2.0, 0.3, 0.1, 0.3, 1.5],
                )),
            };
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(x),
                ],
                i as u64,
            )
        })
        .collect()
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(15);
    group.throughput(Throughput::Elements(N_TUPLES as u64));

    for (label, tuples) in [
        ("parametric", parametric_tuples()),
        ("mixed", mixed_tuples()),
    ] {
        let mut encoded = Vec::new();
        wire::encode_tuples(&mut encoded, &tuples);
        println!(
            "wire_codec/{label}: {} tuples -> {} bytes ({:.1} B/tuple)",
            tuples.len(),
            encoded.len(),
            encoded.len() as f64 / tuples.len() as f64
        );

        group.bench_function(format!("encode/{label}"), |b| {
            let mut out = Vec::with_capacity(encoded.len());
            b.iter(|| {
                out.clear();
                wire::encode_tuples(&mut out, &tuples);
                out.len()
            })
        });

        group.bench_function(format!("decode/{label}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |bytes| {
                    let mut r = wire::Reader::new(&bytes);
                    let back = wire::decode_tuples(&mut r).expect("valid bytes");
                    back.len()
                },
                BatchSize::SmallInput,
            )
        });

        // The in-place columnar path: shared-schema payloads fill typed
        // column vectors directly, skipping per-tuple `Vec<Value>`
        // construction; heterogeneous cells land in row-fallback
        // columns. Bit-identical to `decode_tuples` + columnarize.
        group.bench_function(format!("decode_columnar/{label}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |bytes| {
                    let mut r = wire::Reader::new(&bytes);
                    let batch = wire::decode_batch(&mut r).expect("valid bytes");
                    batch.len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_wire_codec);
criterion_main!(benches);
