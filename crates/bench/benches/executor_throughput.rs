//! Executor throughput on a Q1-style select → project → aggregate graph:
//! tuple-at-a-time single-threaded execution vs batched single-threaded
//! execution vs the threaded executor (batch sizes {1, 64, 1024}) vs the
//! sharded runtime at shard counts {1, 2, 4, 8}, plus the **staged
//! exchange pipeline** (`staged/N`: the same Q1 chain feeding a keyed
//! equi-join, a two-stage plan with an exchange at the aggregate→join
//! boundary) and its single-threaded `run_batched` reference
//! (`staged/batched`). The `session/*` / `sharded/*` / `staged/*` rows
//! pin `with_eager_exchange(false)` (the pre-pipelining sweep) so their
//! history stays comparable; `session_eager/trace_off` and
//! `staged_eager/N` measure the pipelined default against them.
//!
//! This is the perf-trajectory baseline for the execution engine:
//! `BENCH_executor_throughput.json` at the repo root records the
//! medians. The headline comparisons are `single/tuple_at_a_time`
//! against `single/batched/1024` and `single/batched/1024` against
//! `sharded/4/1024`. The sharded worker pool sizes itself to
//! `min(shards, cores)`, so on a single-core box the sharded rows
//! measure routing + merge overhead at zero parallelism.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::collections::HashMap;
use std::sync::Arc;
use ustream_core::batch::Batch;
use ustream_core::ops::aggregate::{AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate};
use ustream_core::ops::project::{Derivation, Project};
use ustream_core::ops::select::{Predicate, Select};
use ustream_core::ops::{Operator, Passthrough};
use ustream_core::query::{NodeId, QueryGraph, ThreadedExecutor};
use ustream_core::schema::{DataType, Schema};
use ustream_core::tuple::Tuple;
use ustream_core::updf::Updf;
use ustream_core::value::Value;
use ustream_prob::dist::Dist;
use ustream_runtime::ShardedExecutor;

const N_TUPLES: usize = 8_192;
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

// ---------------------------------------------------------------------
// Frozen baseline: the tuple-at-a-time executor this engine shipped with
// before the batched, plan-compiled rework — per delivery it re-scans the
// whole edge list into a fresh `Vec`, looks ranks up in a `HashMap`, and
// clones the tuple once per downstream edge *and* once per sink. Kept
// verbatim (over the same `Operator` objects) so the perf trajectory
// always has its origin measurable.
// ---------------------------------------------------------------------

struct SeedExecutor {
    nodes: Vec<Box<dyn Operator>>,
    /// (from, to, port)
    edges: Vec<(usize, usize, usize)>,
    sinks: Vec<usize>,
}

impl SeedExecutor {
    fn run(&mut self, feed: Vec<Tuple>, entry: usize) -> HashMap<usize, Vec<Tuple>> {
        let n = self.nodes.len();
        // Seed topo order: Kahn over repeated edge scans.
        let mut indeg = vec![0usize; n];
        for &(_, to, _) in &self.edges {
            indeg[to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for &(from, to, _) in &self.edges {
                if from == i {
                    indeg[to] -= 1;
                    if indeg[to] == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        let rank: HashMap<usize, usize> = order.iter().enumerate().map(|(r, &i)| (i, r)).collect();
        let mut collected: HashMap<usize, Vec<Tuple>> = HashMap::new();
        for &s in &self.sinks {
            collected.insert(s, Vec::new());
        }
        for t in feed {
            self.propagate(entry, 0, t, &rank, &mut collected);
        }
        for &i in &order {
            let outs = self.nodes[i].flush();
            for t in outs {
                self.deliver(i, t, &rank, &mut collected);
            }
        }
        collected
    }

    fn propagate(
        &mut self,
        node: usize,
        port: usize,
        tuple: Tuple,
        rank: &HashMap<usize, usize>,
        collected: &mut HashMap<usize, Vec<Tuple>>,
    ) {
        let outs = self.nodes[node].process(port, tuple);
        for t in outs {
            self.deliver(node, t, rank, collected);
        }
    }

    fn deliver(
        &mut self,
        from: usize,
        tuple: Tuple,
        rank: &HashMap<usize, usize>,
        collected: &mut HashMap<usize, Vec<Tuple>>,
    ) {
        if let Some(bucket) = collected.get_mut(&from) {
            bucket.push(tuple.clone());
        }
        let targets: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|(f, _, _)| *f == from)
            .map(|&(_, to, port)| (to, port))
            .collect();
        for (to, port) in targets {
            debug_assert!(rank[&to] > rank[&from]);
            self.propagate(to, port, tuple.clone(), rank, collected);
        }
    }
}

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("tag", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

fn inputs() -> Vec<Tuple> {
    let s = schema();
    (0..N_TUPLES)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.25,
                    ))),
                ],
                i as u64,
            )
        })
        .collect()
}

/// The Q1 operators (§2): probabilistic selection, a projection deriving
/// two attributes (one certain linear lookup, one linear transform of
/// the uncertain attribute), and a windowed group-by SUM (100-tuple
/// windows, as in Table 2). Built from the declarative forms
/// (`CertainLinear`, `keyed_by_field`) so the columnar kernels engage —
/// closure-based derivations and key functions are opaque to the
/// vectorizer and would force the row path.
fn q1_ops() -> (Select, Project, WindowedAggregate) {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let project = Project::new(vec![
        Derivation::CertainLinear {
            input: "tag".into(),
            a: 2.5,
            b: 0.0,
            out: "weight".into(),
        },
        Derivation::Linear {
            input: "x".into(),
            a: 0.5,
            b: 1.0,
            out: "y".into(),
        },
    ]);
    let agg = WindowedAggregate::keyed_by_field(
        WindowKind::Tumbling(100),
        "g",
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    );
    (select, project, agg)
}

fn q1_graph() -> (QueryGraph, NodeId) {
    let (select, project, agg) = q1_ops();
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

/// The staged workload: the Q1 chain's windowed aggregate feeding a
/// keyed equi-join against a reference stream — two keyed anchors, so
/// the shard plan cuts the graph into two exchange-connected stages.
fn staged_graph() -> (QueryGraph, NodeId) {
    use ustream_core::ops::join::WindowJoin;
    let (select, project, agg) = q1_ops();
    // Declared key fields, so the join's sorted key index and columnar
    // key extraction engage (bit-identical to the closure form).
    let join = WindowJoin::keyed_by_fields(10_000_000, "group", "gname", 0.0);
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let join = g.add(Box::new(join));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, join, 0).unwrap();
    g.connect(join, sink, 0).unwrap();
    g.source("in", select);
    g.source("refs", join);
    g.sink(sink);
    (g, sink)
}

fn ref_inputs() -> Vec<Tuple> {
    let s = Schema::builder()
        .field("rid", DataType::Int)
        .field("gname", DataType::Str)
        .build();
    (0..64u64)
        .map(|j| {
            Tuple::new(
                s.clone(),
                vec![Value::Int(j as i64), Value::from(format!("Int({})", j % 4))],
                j * (N_TUPLES as u64 / 64),
            )
        })
        .collect()
}

fn q1_seed() -> SeedExecutor {
    let (select, project, agg) = q1_ops();
    SeedExecutor {
        nodes: vec![
            Box::new(select),
            Box::new(project),
            Box::new(agg),
            Box::new(Passthrough::new("sink")),
        ],
        edges: vec![(0, 1, 0), (1, 2, 0), (2, 3, 0)],
        sinks: vec![3],
    }
}

fn bench_executor_throughput(c: &mut Criterion) {
    let feed = inputs();
    let mut group = c.benchmark_group("executor_throughput");
    group.sample_size(15);
    group.throughput(Throughput::Elements(N_TUPLES as u64));

    group.bench_function("single/tuple_at_a_time_seed", |b| {
        b.iter_batched(
            || (q1_seed(), feed.clone()),
            |(mut exec, tuples)| {
                let out = exec.run(tuples, 0);
                out[&3].len()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("single/tuple_at_a_time", |b| {
        b.iter_batched(
            || (q1_graph(), feed.clone()),
            |((mut g, sink), tuples)| {
                let out = g.run(vec![("in".into(), 0, tuples)]).unwrap();
                out[&sink].len()
            },
            BatchSize::SmallInput,
        )
    });

    for bs in BATCH_SIZES {
        group.bench_function(format!("single/batched/{bs}"), |b| {
            b.iter_batched(
                || (q1_graph(), feed.clone()),
                |((mut g, sink), tuples)| {
                    let out = g.run_batched(vec![("in".into(), 0, tuples)], bs).unwrap();
                    out[&sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Instrumentation-overhead A/B: the identical batched run with the
    // always-on per-operator counters switched off. The delta between
    // `single/batched/1024` and this row is the telemetry tax.
    group.bench_function("single/batched_uninstrumented/1024", |b| {
        b.iter_batched(
            || (q1_graph(), feed.clone()),
            |((mut g, sink), tuples)| {
                let out = g
                    .run_batched_uninstrumented(vec![("in".into(), 0, tuples)], 1024)
                    .unwrap();
                out[&sink].len()
            },
            BatchSize::SmallInput,
        )
    });

    for bs in BATCH_SIZES {
        group.bench_function(format!("threaded/batched/{bs}"), |b| {
            b.iter_batched(
                || (q1_graph(), feed.clone()),
                |((g, sink), tuples)| {
                    let exec = ThreadedExecutor::new(1024).with_batch_size(bs);
                    let out = exec.run(g, vec![("in".into(), 0, tuples)]).unwrap();
                    out[&sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // NodeIds are positional, so the sink handle from one construction
    // addresses every factory-built copy.
    let sink = q1_graph().1;

    // Trace-sampling A/B over the incremental session driver: the same
    // Q1 feed pushed as pre-built 1024-tuple batches through a one-shard
    // `ShardedSession`, with sampling explicitly off and at 1-in-4.
    // The off row prices the machinery a never-sampled deployment pays
    // (one relaxed atomic load + early return per pushed batch); the
    // 1-in-4 row adds the modulo, clock reads, and span appends for
    // elected batches. Both pre-build their batches in setup, so they
    // compare against each other (sharded/1/1024, the same driver at
    // its untraced default, builds its feed inside the timed region).
    // The legacy rows pin `with_eager_exchange(false)` so their history
    // stays comparable; `session_eager/trace_off` is the same driver on
    // the pipelined default (row batches columnarized at ingest), the
    // row the ≤9%-overhead-vs-`single/batched/1024` target is read from.
    for (label, every, eager) in [
        ("session/trace_off/1024", 0u64, false),
        ("session/trace_1in4/1024", 4, false),
        ("session_eager/trace_off", 0, true),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    feed.chunks(1024)
                        .map(|chunk| Batch::from(chunk.to_vec()))
                        .collect::<Vec<Batch>>()
                },
                |batches| {
                    let exec = ShardedExecutor::new(1)
                        .with_batch_size(1024)
                        .with_eager_exchange(eager);
                    let mut session = exec.session(|| q1_graph().0).unwrap();
                    session.telemetry().traces().configure(every, 7);
                    let entry = session.source_node("in").unwrap();
                    for batch in batches {
                        session.push_batch(entry, 0, batch).unwrap();
                    }
                    let out = session.finish().unwrap();
                    out[&sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    for shards in SHARD_COUNTS {
        group.bench_function(format!("sharded/{shards}/1024"), |b| {
            b.iter_batched(
                || feed.clone(),
                |tuples| {
                    let exec = ShardedExecutor::new(shards)
                        .with_batch_size(1024)
                        .with_eager_exchange(false);
                    let out = exec
                        .run(|| q1_graph().0, vec![("in".into(), 0, tuples)])
                        .unwrap();
                    out[&sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Staged exchange pipeline: aggregate → keyed join, a two-stage
    // plan. `staged/batched` is the single-threaded run_batched
    // reference over the identical graph and feed; `staged/N` pays the
    // exchange (canonical boundary sort + per-stage barrier at EOS) in
    // return for two key-partitioned stages.
    let refs = ref_inputs();
    let staged_sink = staged_graph().1;
    group.bench_function("staged/batched/1024", |b| {
        b.iter_batched(
            || (staged_graph(), feed.clone(), refs.clone()),
            |((mut g, sink), tuples, refs)| {
                let out = g
                    .run_batched(
                        vec![("in".into(), 0, tuples), ("refs".into(), 1, refs)],
                        1024,
                    )
                    .unwrap();
                out[&sink].len()
            },
            BatchSize::SmallInput,
        )
    });
    for shards in SHARD_COUNTS {
        group.bench_function(format!("staged/{shards}/1024"), |b| {
            b.iter_batched(
                || (feed.clone(), refs.clone()),
                |(tuples, refs)| {
                    let exec = ShardedExecutor::new(shards)
                        .with_batch_size(1024)
                        .with_eager_exchange(false);
                    let out = exec
                        .run(
                            || staged_graph().0,
                            vec![("in".into(), 0, tuples), ("refs".into(), 1, refs)],
                        )
                        .unwrap();
                    out[&staged_sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The same two-stage plan on pipelined (default) delivery: sealed
    // aggregate windows cross the exchange per watermark interval
    // instead of at drain barriers, and the lean hot paths (direct
    // stage-0 routing, columnar exchange runs, sort skip) engage. The
    // delta against `staged/N/1024` is what eager delivery buys.
    for shards in SHARD_COUNTS {
        group.bench_function(format!("staged_eager/{shards}"), |b| {
            b.iter_batched(
                || (feed.clone(), refs.clone()),
                |(tuples, refs)| {
                    let exec = ShardedExecutor::new(shards).with_batch_size(1024);
                    let out = exec
                        .run(
                            || staged_graph().0,
                            vec![("in".into(), 0, tuples), ("refs".into(), 1, refs)],
                        )
                        .unwrap();
                    out[&staged_sink].len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_executor_throughput);
criterion_main!(benches);
