//! Bench for the probabilistic join's match-probability kernels: the
//! Gaussian closed form vs the Monte-Carlo fallback, and the multivariate
//! loc_equals path of Q2.

use criterion::{criterion_group, criterion_main, Criterion};
use ustream_core::ops::join::{JoinCondition, WindowJoin};
use ustream_core::ops::Operator;
use ustream_core::schema::{DataType, Schema};
use ustream_core::tuple::Tuple;
use ustream_core::updf::Updf;
use ustream_core::value::Value;
use ustream_prob::dist::{Dist, MvGaussian};
use ustream_prob::samples::WeightedSamples;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_probe_64_candidates");
    group.sample_size(20);

    // Scalar band join, Gaussian closed form.
    {
        let s = Schema::builder().field("x", DataType::Uncertain).build();
        let mk = |ts: u64, mean: f64| {
            Tuple::new(
                s.clone(),
                vec![Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0)))],
                ts,
            )
        };
        group.bench_function("band_gaussian_closed_form", |b| {
            b.iter_batched(
                || {
                    let mut j = WindowJoin::new(
                        1_000_000,
                        JoinCondition::BandUncertain {
                            left_field: "x".into(),
                            right_field: "x".into(),
                            epsilon: 1.0,
                        },
                        0.0,
                    );
                    for i in 0..64 {
                        j.process(0, mk(i, i as f64 * 0.1));
                    }
                    j
                },
                |mut j| j.process(1, mk(100, 3.0)),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // Scalar band join, sample payloads force Monte Carlo.
    {
        let s = Schema::builder().field("x", DataType::Uncertain).build();
        let mk = |ts: u64, mean: f64| {
            let xs: Vec<f64> = (0..64).map(|i| mean + (i as f64 - 32.0) * 0.03).collect();
            Tuple::new(
                s.clone(),
                vec![Value::from(Updf::Samples(WeightedSamples::unweighted(xs)))],
                ts,
            )
        };
        group.bench_function("band_monte_carlo", |b| {
            b.iter_batched(
                || {
                    let mut j = WindowJoin::new(
                        1_000_000,
                        JoinCondition::BandUncertain {
                            left_field: "x".into(),
                            right_field: "x".into(),
                            epsilon: 1.0,
                        },
                        0.0,
                    );
                    for i in 0..64 {
                        j.process(0, mk(i, i as f64 * 0.1));
                    }
                    j
                },
                |mut j| j.process(1, mk(100, 3.0)),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // Q2 loc_equals, diagonal MvGaussian closed form.
    {
        let s = Schema::builder()
            .field("loc", DataType::UncertainVec(2))
            .build();
        let mk = |ts: u64, x: f64| {
            Tuple::new(
                s.clone(),
                vec![Value::from(Updf::Mv(MvGaussian::isotropic(
                    vec![x, x * 0.5],
                    0.5,
                )))],
                ts,
            )
        };
        group.bench_function("loc_equals_mv_gaussian", |b| {
            b.iter_batched(
                || {
                    let mut j = WindowJoin::new(
                        1_000_000,
                        JoinCondition::LocEquals {
                            left_field: "loc".into(),
                            right_field: "loc".into(),
                            epsilon: 2.0,
                        },
                        0.0,
                    );
                    for i in 0..64 {
                        j.process(0, mk(i, i as f64 * 0.3));
                    }
                    j
                },
                |mut j| j.process(1, mk(100, 9.0)),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
