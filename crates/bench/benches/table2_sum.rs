//! Criterion bench for Table 2's three SUM algorithms over a 100-tuple
//! window of mixture-Gaussian inputs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ustream_bench::table2_inputs;
use ustream_prob::cf::{cf_approx_auto, cf_approx_gaussian, CfSum};
use ustream_prob::histogram::histogram_sum;

fn bench_table2(c: &mut Criterion) {
    let window = table2_inputs(100, 7);
    let mut group = c.benchmark_group("table2_sum");
    group.sample_size(20);

    group.bench_function("histogram_sampling", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| histogram_sum(&window, 100, 2_000, 6.0, &mut rng),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("cf_inversion", |b| {
        b.iter(|| {
            let sum = CfSum::new(window.clone());
            sum.invert_to_histogram(512, 8.0)
        })
    });

    group.bench_function("cf_approx_auto", |b| {
        b.iter(|| {
            let sum = CfSum::new(window.clone());
            cf_approx_auto(&sum, 0.15, 0.5)
        })
    });

    group.bench_function("cf_approx_gaussian_cumulants", |b| {
        b.iter(|| cf_approx_gaussian(&window))
    });

    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
