//! Bench for the radar substrate: pulse synthesis and moment estimation
//! at several averaging sizes (the per-epoch compute cost behind Table 1)
//! plus the §4.4 T-operator MA-CLT path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_sim::{
    compute_moments, RadarNode, RadarParams, RadarTOperator, VelocityUq, WeatherField,
};

fn bench_radar(c: &mut Criterion) {
    let params = RadarParams {
        gates: 416,
        ..Default::default()
    };
    let field = WeatherField::tornadic_default();
    let node = RadarNode::new(0, [0.0, 0.0], params);
    let bearing = (9_000.0f64).atan2(12_000.0);
    let pulses = node.sector_scan(&field, bearing - 0.05, bearing + 0.05, 0.0, 3);

    let mut group = c.benchmark_group("radar");
    group.sample_size(10);

    group.bench_function("pulse_synthesis_0p1rad_sector", |b| {
        b.iter(|| node.sector_scan(&field, bearing - 0.05, bearing + 0.05, 0.0, 3))
    });

    for &n_avg in &[40usize, 200, 1000] {
        group.bench_with_input(BenchmarkId::new("moments", n_avg), &n_avg, |b, &n| {
            b.iter(|| compute_moments(&pulses, &params, n))
        });
    }

    group.bench_function("t_operator_ma_clt_64gates", |b| {
        let mut t_op = RadarTOperator::new(params, VelocityUq::MaClt { max_order: 3 });
        let gates: Vec<usize> = (180..244).collect();
        b.iter(|| t_op.transform_group(0, &pulses[..200], &gates))
    });

    group.finish();
}

criterion_group!(benches, bench_radar);
criterion_main!(benches);
