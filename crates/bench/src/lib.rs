//! # ustream-bench — shared workloads and table formatting
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see DESIGN.md §5 for the experiment index); the Criterion
//! benches in `benches/` time the same code paths. This library holds the
//! workload generators shared between them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_sim::{SensingModel, TraceConfig, TraceGenerator, WorldConfig};
use ustream_inference::{FactoredConfig, MotionModel, ObservationModel};
use ustream_prob::dist::{Dist, GaussianMixture};

/// Table 2 workload: per-tuple distributions "generated from mixture
/// Gaussian distributions to simulate arbitrary real-world
/// distributions". Each tuple gets a random 2–3 component mixture.
pub fn table2_inputs(n: usize, seed: u64) -> Vec<Dist> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = 2 + (rng.gen::<f64>() < 0.5) as usize;
            let triples: Vec<(f64, f64, f64)> = (0..k)
                .map(|_| {
                    (
                        0.2 + rng.gen::<f64>(),        // weight (normalized later)
                        rng.gen::<f64>() * 10.0 - 5.0, // mean
                        0.3 + rng.gen::<f64>() * 1.2,  // std dev
                    )
                })
                .collect();
            Dist::Mixture(GaussianMixture::from_triples(&triples))
        })
        .collect()
}

/// Figure 3 workload: a noisy trace over a **fixed** storage area (as in
/// the paper's sweep, where only the object count varies from 100 to
/// 10,000). A fixed floor means more objects ⇒ more candidates per scan,
/// which is what makes Figure 3(b)'s time-per-event grow with the
/// population.
pub struct Fig3Setup {
    pub gen: TraceGenerator,
    pub num_objects: usize,
}

/// Fixed floor: 20×20 shelves at 6 ft spacing = 120×120 ft.
const FIG3_GRID: usize = 20;

pub fn fig3_setup(num_objects: usize, seed: u64) -> Fig3Setup {
    let cfg = TraceConfig {
        world: WorldConfig {
            shelf_rows: FIG3_GRID,
            shelf_cols: FIG3_GRID,
            num_objects,
            // The Fig. 3 trace measures *inference* error under sensing
            // noise; objects hold still for the duration (shelf moves are
            // exercised by the §4.3 mixture experiments instead).
            move_prob: 0.0,
            seed,
            ..Default::default()
        },
        sensing: SensingModel::noisy(),
        seed: seed ^ 0x9E37,
        ..Default::default()
    };
    Fig3Setup {
        gen: TraceGenerator::new(cfg),
        num_objects,
    }
}

/// Build the factored-filter config matching a trace generator.
pub fn filter_config(
    gen: &TraceGenerator,
    particles: usize,
    spatial: bool,
    compression: bool,
    seed: u64,
) -> FactoredConfig {
    let shelf_xy: Vec<[f64; 2]> = gen
        .world
        .shelves()
        .iter()
        .map(|s| [s.pos[0], s.pos[1]])
        .collect();
    FactoredConfig {
        num_particles: particles,
        extent: gen.world.extent(),
        motion: MotionModel {
            diffusion: 0.05,
            move_prob: gen.world.config().move_prob,
            shelf_xy,
            placement_jitter: gen.world.config().placement_jitter,
        },
        obs: ObservationModel::new(*gen.sensing()),
        use_spatial_index: spatial,
        compression: compression.then_some(ustream_inference::CompressionConfig {
            spread_threshold: 1.5,
            min_particles: (particles / 4).max(8),
        }),
        negative_evidence: true,
        resample_fraction: 0.5,
        seed,
    }
}

/// Fixed-width table printer for the harness binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_inputs_are_mixtures_with_sane_moments() {
        let inputs = table2_inputs(100, 1);
        assert_eq!(inputs.len(), 100);
        for d in &inputs {
            assert!(matches!(d, Dist::Mixture(_)));
            assert!(d.mean().abs() < 10.0);
            assert!(d.variance() > 0.0 && d.variance() < 50.0);
        }
        // Deterministic by seed.
        let again = table2_inputs(100, 1);
        assert_eq!(inputs[0].mean(), again[0].mean());
    }

    #[test]
    fn fig3_setup_fixed_floor() {
        let small = fig3_setup(100, 2);
        let big = fig3_setup(1000, 2);
        assert_eq!(small.gen.world.extent(), big.gen.world.extent());
        assert_eq!(big.gen.world.objects().len(), 1000);
    }

    #[test]
    fn filter_config_mirrors_world() {
        let setup = fig3_setup(50, 3);
        let cfg = filter_config(&setup.gen, 64, true, true, 1);
        assert_eq!(cfg.num_particles, 64);
        assert_eq!(cfg.extent, setup.gen.world.extent());
        assert_eq!(cfg.motion.shelf_xy.len(), setup.gen.world.shelves().len());
        assert!(cfg.compression.is_some());
    }
}
