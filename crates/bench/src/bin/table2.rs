//! E2 — Table 2: "Algorithm comparison for performing sum over a tuple
//! stream. A tumbling window of size of 100 tuples is used for
//! aggregation."
//!
//! Three algorithms over identical windows of random-mixture inputs:
//! the histogram-based sampling baseline \[25\], exact CF inversion, and
//! CF approximation. Reports throughput (tuples/s) and the distance of
//! each output to the exact result distribution (total-variation distance
//! in [0, 1], standing in for \[25\]'s variance-distance formula — see
//! EXPERIMENTS.md).
//!
//! Run: `cargo run -p ustream-bench --release --bin table2`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use ustream_bench::{print_table, table2_inputs};
use ustream_prob::cf::{cf_approx_auto, CfSum};
use ustream_prob::dist::Dist;
use ustream_prob::histogram::{histogram_sum, HistogramPdf};
use ustream_prob::metrics::tv_distance_grid;

const WINDOW: usize = 100;
/// Windows timed per algorithm.
const TIMED_WINDOWS: usize = 30;
/// Windows used for the accuracy column (inversion is slow; keep small).
const ACCURACY_WINDOWS: usize = 8;

/// Ge–Zdonik parameters: buckets per input pdf and samples per window.
const HIST_BUCKETS: usize = 100;
const HIST_SAMPLES: usize = 2_000;
/// Inversion resolution.
const INV_BINS: usize = 512;
const INV_SPAN: f64 = 8.0;

fn windows(n: usize, seed0: u64) -> Vec<Vec<Dist>> {
    (0..n)
        .map(|w| table2_inputs(WINDOW, seed0 + w as u64))
        .collect()
}

fn main() {
    println!("Reproducing Table 2 (window = {WINDOW} tuples, mixture-Gaussian inputs)");

    // --- Accuracy: compare each algorithm to the exact inversion. ---
    let acc_windows = windows(ACCURACY_WINDOWS, 1000);
    let mut rng = StdRng::seed_from_u64(77);
    let mut tv_hist = 0.0;
    let mut tv_approx = 0.0;
    for w in &acc_windows {
        let sum = CfSum::new(w.clone());
        let exact: HistogramPdf = sum.invert_to_histogram(1024, 10.0);
        let h = histogram_sum(w, HIST_BUCKETS, HIST_SAMPLES, 6.0, &mut rng);
        // Express the histogram output as a Dist-like comparison via its
        // own grid: reuse tv on a Gaussian moment-matched wrapper is
        // unfair; compare histogram pdf to exact directly.
        tv_hist += h.tv_distance(&exact);
        let approx = cf_approx_auto(&sum, 0.15, 0.5);
        tv_approx += tv_distance_grid(&approx, &exact);
    }
    tv_hist /= ACCURACY_WINDOWS as f64;
    tv_approx /= ACCURACY_WINDOWS as f64;

    // --- Throughput ---
    let tw = windows(TIMED_WINDOWS, 2000);

    let t0 = Instant::now();
    let mut rng2 = StdRng::seed_from_u64(78);
    for w in &tw {
        let h = histogram_sum(w, HIST_BUCKETS, HIST_SAMPLES, 6.0, &mut rng2);
        std::hint::black_box(h.mean());
    }
    let hist_tput = (TIMED_WINDOWS * WINDOW) as f64 / t0.elapsed().as_secs_f64();

    // Paper-literal inversion (one full integral per output point) —
    // this is Table 2's "CF (inversion)" contender. Time fewer windows;
    // it is deliberately the slow algorithm.
    let inv_windows = 4usize;
    let t0 = Instant::now();
    for w in tw.iter().take(inv_windows) {
        let sum = CfSum::new(w.clone());
        let h = sum.invert_pointwise(INV_BINS, INV_SPAN);
        std::hint::black_box(h.mean());
    }
    let inv_tput = (inv_windows * WINDOW) as f64 / t0.elapsed().as_secs_f64();

    // Our engineering improvement: sharing CF evaluations across the
    // output grid (reported as an extra row, not in the paper).
    let t0 = Instant::now();
    for w in &tw {
        let sum = CfSum::new(w.clone());
        let h = sum.invert_to_histogram(INV_BINS, INV_SPAN);
        std::hint::black_box(h.mean());
    }
    let inv_shared_tput = (TIMED_WINDOWS * WINDOW) as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for w in &tw {
        let sum = CfSum::new(w.clone());
        let d = cf_approx_auto(&sum, 0.15, 0.5);
        std::hint::black_box(&d);
    }
    let approx_tput = (TIMED_WINDOWS * WINDOW) as f64 / t0.elapsed().as_secs_f64();

    let rows = vec![
        vec![
            "Histogram [25]".to_string(),
            format!("{hist_tput:.0}"),
            format!("{tv_hist:.3}"),
        ],
        vec![
            "CF (inversion)".to_string(),
            format!("{inv_tput:.0}"),
            "0.000 (exact)".to_string(),
        ],
        vec![
            "CF (approx.)".to_string(),
            format!("{approx_tput:.0}"),
            format!("{tv_approx:.3}"),
        ],
        vec![
            "CF (inversion, shared grid)*".to_string(),
            format!("{inv_shared_tput:.0}"),
            "0.000 (exact)".to_string(),
        ],
    ];
    print_table(
        "Table 2 — SUM over a tuple stream (tumbling window of 100 tuples)",
        &[
            "Algorithm",
            "Throughput (tuples/s)",
            "Variance distance [0,1]",
        ],
        &rows,
    );

    println!("\n* extra row: our implementation can share CF evaluations across the");
    println!("  output grid, which is not one of the paper's contenders.");
    println!("\nPaper reference (absolute numbers differ; shape should hold):");
    println!(
        "  Histogram 3382 t/s @ 0.083 | CF inversion 466 t/s @ 0 | CF approx 10593 t/s @ 0.012"
    );
    println!("Shape checks:");
    println!(
        "  approx fastest: {} | inversion slowest: {} | approx more accurate than histogram: {}",
        approx_tput > hist_tput,
        inv_tput < hist_tput && inv_tput < approx_tput,
        tv_approx < tv_hist
    );
}
