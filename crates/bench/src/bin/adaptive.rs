//! E6 — §4.2 adaptive particle control: "it starts with a relatively
//! small number of particles and keeps doubling this number before
//! meeting the accuracy requirement. After that, it reduces the number of
//! particles by a constant each time until it finds the smallest number."
//!
//! Protocol: record a fixed stretch of the patrol (the replay), choose
//! the best-observed shelf tags as reference objects, calibrate the
//! attainable accuracy with a large particle budget, set the requirement
//! slightly above it, then let the controller pick the budget — each
//! round re-runs the *same* replay at the controller's current count, so
//! the error differences are purely due to the particle budget.
//!
//! Run: `cargo run -p ustream-bench --release --bin adaptive`

use rfid_sim::TagRef;
use ustream_bench::{fig3_setup, print_table};
use ustream_inference::{AdaptiveController, ObservationModel, Phase, ReferenceProbe};

type Replay = Vec<([f64; 3], Vec<u32>)>;
/// Ground-truth tag positions: (tag id, (x, y)).
type Truth = Vec<(u32, [f64; 2])>;

fn record_replay(scans: usize) -> (Replay, Truth, (f64, f64), ObservationModel) {
    let mut setup = fig3_setup(200, 17);
    let obs = ObservationModel::new(*setup.gen.sensing());
    let extent = setup.gen.world.extent();
    let n_shelves = setup.gen.world.shelves().len();
    let mut shelf_reads = vec![0u32; n_shelves];
    let mut replay = Vec::with_capacity(scans);
    for _ in 0..scans {
        let scan = setup.gen.next_scan();
        let shelves: Vec<u32> = scan
            .readings
            .iter()
            .filter_map(|r| match r.tag {
                TagRef::Shelf(id) => Some(id),
                _ => None,
            })
            .collect();
        for &s in &shelves {
            shelf_reads[s as usize] += 1;
        }
        replay.push((scan.truth.reader_pos, shelves));
    }
    // Reference tags: the 8 best-observed shelves.
    let mut by_reads: Vec<(u32, u32)> = shelf_reads
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u32, c))
        .collect();
    by_reads.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let tags: Vec<(u32, [f64; 2])> = by_reads
        .iter()
        .take(8)
        .map(|&(id, _)| {
            let s = &setup.gen.world.shelves()[id as usize];
            (id, [s.pos[0], s.pos[1]])
        })
        .collect();
    (replay, tags, extent, obs)
}

fn probe_error(
    replay: &Replay,
    tags: &[(u32, [f64; 2])],
    extent: (f64, f64),
    obs: ObservationModel,
    particles: usize,
    seed: u64,
) -> f64 {
    let mut probe = ReferenceProbe::new(tags.to_vec(), particles, extent, obs, seed);
    for (pos, shelves) in replay {
        probe.observe_scan(*pos, shelves);
    }
    probe.current_error()
}

fn main() {
    let (replay, tags, extent, obs) = record_replay(900);
    println!(
        "Replay: {} scans; reference tags: {:?}",
        replay.len(),
        tags.iter().map(|(id, _)| *id).collect::<Vec<_>>()
    );

    // Calibrate the attainable accuracy with a generous budget.
    let best = probe_error(&replay, &tags, extent, obs, 2048, 999);
    let target = best * 1.25;
    println!("Attainable probe error @2048 particles: {best:.2} ft → requirement {target:.2} ft");

    let mut controller = AdaptiveController::new(target, 8, 4096, 32);
    let mut rows = Vec::new();
    let mut steady_rounds = 0;
    for round in 0..30 {
        let n = controller.current();
        let err = probe_error(&replay, &tags, extent, obs, n, 100 + round);
        let phase = controller.phase();
        rows.push(vec![
            round.to_string(),
            n.to_string(),
            format!("{err:.2}"),
            format!("{phase:?}"),
        ]);
        controller.update(err);
        if controller.phase() == Phase::Steady {
            steady_rounds += 1;
            if steady_rounds >= 3 {
                break;
            }
        }
    }

    print_table(
        &format!("§4.2 adaptive particle-count control (target {target:.2} ft)"),
        &["Round", "Particles", "Probe error (ft)", "Phase"],
        &rows,
    );
    println!(
        "\nSettled at {} particles in phase {:?}.",
        controller.current(),
        controller.phase()
    );
    println!("Expected trajectory: error shrinks while the count doubles; once the");
    println!("requirement is met the count walks back down and settles at the");
    println!("smallest adequate budget (paper §4.2).");
}
