//! E1 — Table 1: "Tornado detection using averaged moment data from 38
//! seconds of raw data … The averaging size 40 is used to represent
//! detection results using fine-grained data. The reported detection
//! results are averaged over 4 sector scans in the 38 second period."
//!
//! Sweep the averaging size over the paper's values on the synthetic
//! tornadic scene; report moment-data size, detection runtime, reported
//! tornados, false negatives, and the two feasibility gates (4 Mb/s
//! link, 20 s detection window).
//!
//! Run: `cargo run -p ustream-bench --release --bin table1`

use radar_sim::{table1_sweep, ScenarioConfig, WeatherField};
use ustream_bench::print_table;

fn main() {
    let field = WeatherField::tornadic_default();
    let cfg = ScenarioConfig::default();
    println!(
        "Scenario: {} sector scans x {:.1}s, raw rate {:.0} Mb/s, link {:.0} Mb/s, deadline {:.0}s",
        cfg.num_scans,
        cfg.scan_period_s,
        cfg.params.raw_bits_per_second() / 1e6,
        cfg.link_bps / 1e6,
        cfg.detection_deadline_s
    );
    let sizes = [40usize, 60, 80, 100, 200, 500, 1000];
    let rows_data = table1_sweep(&field, &sizes, &cfg);

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.averaging_size.to_string(),
                format!("{:.2}", r.moment_mb),
                format!("{:.3}", r.detection_secs),
                format!("{}", r.cells_examined),
                format!("{:.2}", r.reported_tornados),
                format!("{:.2}", r.false_negatives),
                if r.fits_link { "yes" } else { "NO" }.to_string(),
                if r.fits_deadline { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — tornado detection vs averaging size (4 sector scans)",
        &[
            "Avg size",
            "Moment MB",
            "Detect s",
            "Detect cells",
            "Tornados",
            "False neg",
            "Fits 4Mb/s",
            "Fits 20s",
        ],
        &rows,
    );

    println!("\nPaper reference (May 9 2007 CASA data, Xeon 2.13 GHz):");
    println!("  40:9.22MB/27s/3.75/0  60:6.15/23/1.5/2.25  80:4.62/21/0.5/3.25");
    println!("  100:3.7/21/0.25/3.75  200:1.87/20/0/3.75  500:0.76/20/0/3.75  1000:0.39/20/0/3.75");
    let fine = &rows_data[0];
    let coarse = rows_data.last().unwrap();
    println!("\nShape checks:");
    println!(
        "  data shrinks with averaging: {} | detections vanish at coarse averaging: {} | false negatives rise: {}",
        fine.moment_mb > 5.0 * coarse.moment_mb,
        coarse.reported_tornados < fine.reported_tornados && coarse.reported_tornados == 0.0,
        coarse.false_negatives > fine.false_negatives
    );
}
