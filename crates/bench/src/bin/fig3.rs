//! E3/E4 — Figure 3: "Accuracy and performance results for a high noisy
//! RFID trace": (a) inference error in the XY plane (ft) and (b) CPU time
//! per event (ms), vs number of objects, for 50/100/200 particles.
//!
//! Run: `cargo run -p ustream-bench --release --bin fig3 [--quick]`

use rfid_sim::TagRef;
use std::time::Instant;
use ustream_bench::{fig3_setup, filter_config, print_table};
use ustream_inference::FactoredFilter;

struct Cell {
    error_ft: f64,
    ms_per_event: f64,
}

fn run_cell(num_objects: usize, particles: usize, scans: usize) -> Cell {
    let mut setup = fig3_setup(num_objects, 42);
    let cfg = filter_config(&setup.gen, particles, true, true, 7);
    let mut filter = FactoredFilter::new(num_objects, cfg);

    let mut events = 0usize;
    let mut busy = 0.0f64;
    let mut read_counts = vec![0u32; num_objects];
    let mut last_truth = Vec::new();
    for _ in 0..scans {
        let scan = setup.gen.next_scan();
        let read: Vec<u32> = scan
            .readings
            .iter()
            .filter_map(|r| match r.tag {
                TagRef::Object(id) => Some(id),
                _ => None,
            })
            .collect();
        for &id in &read {
            read_counts[id as usize] += 1;
        }
        events += read.len().max(1);
        let t0 = Instant::now();
        filter.process_scan(scan.truth.reader_pos, &read);
        busy += t0.elapsed().as_secs_f64();
        last_truth = scan.truth.object_xy.clone();
    }
    // Error over sufficiently-observed (tracked) objects — unobserved
    // objects still carry prior uncertainty and are not what Fig. 3a's
    // sub-foot errors measure.
    let tracked: Vec<u32> = read_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= 5)
        .map(|(i, _)| i as u32)
        .collect();
    let error_ft = filter.rmse(&last_truth, &tracked);
    Cell {
        error_ft,
        ms_per_event: busy * 1000.0 / events as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let object_counts: Vec<usize> = if quick {
        vec![100, 1000]
    } else {
        vec![100, 1000, 10_000]
    };
    let particle_counts = [50usize, 100, 200];
    // A full serpentine patrol of the 120×120 ft floor is ~1300 scans;
    // run at least one effective pass so tracked objects converge.
    let scans = if quick { 700 } else { 2000 };

    println!("Figure 3 sweep: highly noisy trace, {scans} scans per cell");
    let mut err_rows = Vec::new();
    let mut time_rows = Vec::new();
    for &n in &object_counts {
        let mut err_row = vec![n.to_string()];
        let mut time_row = vec![n.to_string()];
        for &p in &particle_counts {
            let cell = run_cell(n, p, scans);
            err_row.push(format!("{:.2}", cell.error_ft));
            time_row.push(format!("{:.3}", cell.ms_per_event));
        }
        err_rows.push(err_row);
        time_rows.push(time_row);
    }
    print_table(
        "Figure 3(a) — inference error in XY plane (ft)",
        &["#objects", "50 particles", "100 particles", "200 particles"],
        &err_rows,
    );
    print_table(
        "Figure 3(b) — CPU time per event (ms)",
        &["#objects", "50 particles", "100 particles", "200 particles"],
        &time_rows,
    );
    println!("\nPaper shape: error falls as particles rise (3a); time/event rises with");
    println!("particles and grows slowly with object count thanks to spatial indexing (3b).");
}
