//! E5 — §4.1 scalability claim: "our system improves particle filtering
//! from processing 0.1 reading per second given 20 objects to over 1000
//! readings per second in most cases given 20,000 objects, e.g.,
//! achieving 7 orders of magnitude improvement in scalability."
//!
//! Measures readings/second for the optimization ladder:
//!   joint PF (20 objects, accuracy-matched particle count)
//!   → factored                     (20 objects)
//!   → factored + index             (20,000 objects)
//!   → factored + index + compression (20,000 objects)
//!
//! Run: `cargo run -p ustream-bench --release --bin scalability [--quick]`

use rfid_sim::TagRef;
use std::time::Instant;
use ustream_bench::{fig3_setup, filter_config, print_table};
use ustream_inference::{FactoredFilter, JointConfig, JointFilter};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scans = if quick { 40 } else { 120 };
    let big_n = if quick { 2_000 } else { 20_000 };
    let mut rows = Vec::new();

    // --- Joint baseline at 20 objects. The joint state is 40-D; matching
    // factored accuracy needs a very large joint particle count. ---
    let joint_particles = if quick { 20_000 } else { 100_000 };
    {
        let mut setup = fig3_setup(20, 11);
        let fc = filter_config(&setup.gen, 100, false, false, 3);
        let cfg = JointConfig {
            num_particles: joint_particles,
            extent: fc.extent,
            motion: fc.motion.clone(),
            obs: fc.obs,
            resample_fraction: 0.5,
            seed: 5,
        };
        let mut joint = JointFilter::new(20, cfg);
        let mut events = 0usize;
        let t0 = Instant::now();
        for _ in 0..scans.min(20) {
            let scan = setup.gen.next_scan();
            let read: Vec<u32> = scan
                .readings
                .iter()
                .filter_map(|r| match r.tag {
                    TagRef::Object(id) => Some(id),
                    _ => None,
                })
                .collect();
            events += read.len().max(1);
            joint.process_scan(scan.truth.reader_pos, &read);
        }
        let secs = t0.elapsed().as_secs_f64();
        rows.push(vec![
            format!("joint PF ({joint_particles} joint particles)"),
            "20".into(),
            format!("{:.2}", events as f64 / secs),
        ]);
    }

    // --- Factored ladder. ---
    let ladder: [(&str, usize, bool, bool); 3] = [
        ("factored", 20, false, false),
        ("factored + spatial index", big_n, true, false),
        ("factored + index + compression", big_n, true, true),
    ];
    for (label, n, spatial, compression) in ladder {
        let mut setup = fig3_setup(n, 13);
        let mut cfg = filter_config(&setup.gen, 100, spatial, compression, 9);
        if compression {
            // The noisy-trace posteriors stabilize around 2–3 ft spread;
            // compress once a cloud is that tight.
            cfg.compression = Some(ustream_inference::CompressionConfig {
                spread_threshold: 3.0,
                min_particles: 12,
            });
        }
        let mut filter = FactoredFilter::new(n, cfg);
        // Warm up (clouds localize, compression kicks in).
        for _ in 0..scans / 2 {
            let scan = setup.gen.next_scan();
            let read: Vec<u32> = scan
                .readings
                .iter()
                .filter_map(|r| match r.tag {
                    TagRef::Object(id) => Some(id),
                    _ => None,
                })
                .collect();
            filter.process_scan(scan.truth.reader_pos, &read);
        }
        let mut events = 0usize;
        let t0 = Instant::now();
        for _ in 0..scans {
            let scan = setup.gen.next_scan();
            let read: Vec<u32> = scan
                .readings
                .iter()
                .filter_map(|r| match r.tag {
                    TagRef::Object(id) => Some(id),
                    _ => None,
                })
                .collect();
            events += read.len().max(1);
            filter.process_scan(scan.truth.reader_pos, &read);
        }
        let secs = t0.elapsed().as_secs_f64();
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            format!("{:.1}", events as f64 / secs),
        ]);
    }

    print_table(
        "§4.1 scalability ladder (100 particles/object unless noted)",
        &["Configuration", "#objects", "readings/s"],
        &rows,
    );
    println!("\nPaper claim: 0.1 readings/s @ 20 objects (unoptimized) → >1000 readings/s");
    println!("@ 20,000 objects (factored + indexed + compressed).");
    let first: f64 = rows[0][2].parse().unwrap();
    let last: f64 = rows.last().unwrap()[2].parse().unwrap();
    println!(
        "Measured improvement factor (throughput × population): {:.1e}",
        (last * big_n as f64) / (first * 20.0)
    );
}
