//! E8 — §4.4/§5.1 correlated aggregation: the CLT for MA series.
//!
//! A voxel's per-pulse velocity observations form a correlated (MA)
//! series. Averaging a window of them yields a mean whose true sampling
//! variance is governed by the long-run variance; the naive iid CLT
//! underestimates it. This harness compares, against Monte-Carlo truth:
//!
//!   - MA-CLT (identify order by k-lag ACF, then CLT for MA) — §4.4
//!   - naive iid CLT
//!   - Newey–West long-run variance (robust fallback)
//!
//! Run: `cargo run -p ustream-bench --release --bin ma_clt`

use ustream_bench::print_table;
use ustream_ts::clt::{iid_clt_mean, ma_clt_pipeline, newey_west_mean};
use ustream_ts::generator::ma_series;

fn main() {
    let theta_sets: Vec<(&str, Vec<f64>)> = vec![
        ("white noise", vec![]),
        ("MA(1) θ=0.5", vec![0.5]),
        ("MA(1) θ=0.9", vec![0.9]),
        ("MA(2) θ=(0.6,0.3)", vec![0.6, 0.3]),
        ("MA(1) θ=−0.6 (anti-corr.)", vec![-0.6]),
    ];
    let window = 200usize;
    let mc_reps = 4000usize;
    let est_reps = 300usize;

    let mut rows = Vec::new();
    for (label, theta) in &theta_sets {
        // Monte-Carlo truth: variance of the window mean.
        let mut means = Vec::with_capacity(mc_reps);
        for r in 0..mc_reps {
            let xs = ma_series(theta, 1.0, window, 50_000 + r as u64);
            means.push(xs.iter().sum::<f64>() / window as f64);
        }
        let mu = means.iter().sum::<f64>() / mc_reps as f64;
        let mc_var = means.iter().map(|m| (m - mu) * (m - mu)).sum::<f64>() / mc_reps as f64;

        // Average the three estimators over windows.
        let (mut v_ma, mut v_iid, mut v_nw) = (0.0, 0.0, 0.0);
        let mut orders = 0usize;
        for r in 0..est_reps {
            let xs = ma_series(theta, 1.0, window, 90_000 + r as u64);
            let ma = ma_clt_pipeline(&xs, 4, 3.0);
            v_ma += ma.mean_dist.variance();
            orders += ma.order;
            v_iid += iid_clt_mean(&xs).variance();
            v_nw += newey_west_mean(&xs, 8).variance();
        }
        v_ma /= est_reps as f64;
        v_iid /= est_reps as f64;
        v_nw /= est_reps as f64;

        rows.push(vec![
            label.to_string(),
            format!("{:.2}", orders as f64 / est_reps as f64),
            format!("{mc_var:.5}"),
            format!("{v_ma:.5} ({:+.0}%)", 100.0 * (v_ma / mc_var - 1.0)),
            format!("{v_iid:.5} ({:+.0}%)", 100.0 * (v_iid / mc_var - 1.0)),
            format!("{v_nw:.5} ({:+.0}%)", 100.0 * (v_nw / mc_var - 1.0)),
        ]);
    }

    print_table(
        "§4.4 MA-CLT for windowed mean (window = 200, σ² errors vs Monte-Carlo truth)",
        &[
            "Series",
            "avg ID'd q",
            "MC Var(mean)",
            "MA-CLT",
            "iid CLT",
            "Newey-West",
        ],
        &rows,
    );
    println!("\nExpected shape: MA-CLT tracks the Monte-Carlo truth; the naive iid CLT");
    println!("underestimates variance for positively-correlated series (overconfident");
    println!("uncertainty bounds) and overestimates for anti-correlated ones.");
}
