//! Property suite for the incremental quantile sketch (ISSUE 8): the
//! estimates must track exact quantiles within a rank tolerance over
//! arbitrary finite f64 streams, merging must be associative within
//! the estimator's tolerance (with extremes preserved exactly), and
//! the whole estimator must be deterministic — same stream, same
//! estimates, bit for bit.

use proptest::prelude::*;
use ustream_telemetry::QuantileSketch;

/// Values spanning ten orders of magnitude either side of zero, plus
/// degenerate repeats — the adversarial shapes for a marker sketch.
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0f64..1.0,
        -1e6f64..1e6,
        -1e300f64..1e300,
        0.0f64..1e-6,
        Just(0.0),
        Just(42.0),
    ]
}

fn stream() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(value(), 1..1200)
}

/// The estimate's possible ranks in the exact data: (fraction strictly
/// below, fraction at-or-below) — an interval, so duplicate-heavy
/// streams are judged fairly.
fn rank_bounds(data: &[f64], est: f64) -> (f64, f64) {
    let below = data.iter().filter(|&&v| v < est).count() as f64;
    let at_or_below = data.iter().filter(|&&v| v <= est).count() as f64;
    (below / data.len() as f64, at_or_below / data.len() as f64)
}

const HEADLINE: [f64; 3] = [0.50, 0.95, 0.99];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn quantiles_track_exact_ranks(data in stream()) {
        let s = QuantileSketch::new();
        for &v in &data {
            s.record(v);
        }
        for q in HEADLINE {
            let est = s.quantile(q).expect("non-empty stream has quantiles");
            prop_assert!(est.is_finite(), "estimate must stay finite, got {est}");
            let (lo, hi) = rank_bounds(&data, est);
            prop_assert!(
                lo - 0.10 <= q && q <= hi + 0.10,
                "q={q}: estimate {est} has exact rank [{lo}, {hi}] over {} samples",
                data.len()
            );
        }
    }

    #[test]
    fn merge_is_associative_within_tolerance(
        a in stream(),
        b in stream(),
        c in stream(),
    ) {
        let mk = |data: &[f64]| {
            let s = QuantileSketch::new();
            for &v in data {
                s.record(v);
            }
            s
        };
        let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));
        let left = QuantileSketch::merged(&QuantileSketch::merged(&sa, &sb), &sc);
        let right = QuantileSketch::merged(&sa, &QuantileSketch::merged(&sb, &sc));

        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);

        let (l, r) = (left.snapshot(), right.snapshot());
        prop_assert_eq!(l.count, r.count);
        prop_assert_eq!(l.count, all.len() as u64);
        // Extremes survive pooling exactly, in either merge order.
        prop_assert_eq!(l.min.to_bits(), r.min.to_bits());
        prop_assert_eq!(l.max.to_bits(), r.max.to_bits());

        for (sketch, side) in [(&left, "left"), (&right, "right")] {
            for q in HEADLINE {
                let est = sketch.quantile(q).expect("merged stream is non-empty");
                let (lo, hi) = rank_bounds(&all, est);
                prop_assert!(
                    lo - 0.12 <= q && q <= hi + 0.12,
                    "{side} merge, q={q}: estimate {est} has rank [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn same_stream_same_estimates(data in stream()) {
        let (s1, s2) = (QuantileSketch::new(), QuantileSketch::new());
        for &v in &data {
            s1.record(v);
        }
        for &v in &data {
            s2.record(v);
        }
        prop_assert_eq!(s1.count(), s2.count());
        for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let (e1, e2) = (s1.quantile(q), s2.quantile(q));
            prop_assert_eq!(
                e1.map(f64::to_bits),
                e2.map(f64::to_bits),
                "q={}: {:?} vs {:?}", q, e1, e2
            );
        }
    }
}
