//! `EventJournal` ring semantics under wraparound and concurrency:
//! sequence continuity across evictions, `recent(n)` ordering, and
//! per-subsystem toggle races against concurrent writers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use ustream_telemetry::{EventJournal, Subsystem, TraceDetail};

fn pump(node: usize) -> TraceDetail {
    TraceDetail::BatchPumped {
        node,
        port: 0,
        tuples: 1,
    }
}

#[test]
fn wraparound_keeps_seq_continuity() {
    let capacity = 8;
    let j = EventJournal::new(capacity);
    // 10x the capacity: the ring wraps many times over.
    for i in 0..capacity * 10 {
        j.record(pump(i));
    }
    let events = j.all();
    assert_eq!(events.len(), capacity, "ring bounded at capacity");
    // The retained window is exactly the newest `capacity` events,
    // consecutive with no gaps and no duplicates.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expect: Vec<u64> = ((capacity * 9) as u64..(capacity * 10) as u64).collect();
    assert_eq!(seqs, expect);
    assert_eq!(j.recorded(), (capacity * 10) as u64);
    // The payloads track the sequence numbers (eviction never
    // reorders or mixes entries).
    for e in &events {
        assert_eq!(e.detail, pump(e.seq as usize));
    }
}

#[test]
fn recent_n_is_the_newest_suffix_oldest_first() {
    let j = EventJournal::new(16);
    for i in 0..40 {
        j.record(pump(i));
    }
    // Asking for more than retained returns everything retained.
    assert_eq!(j.recent(999).len(), 16);
    for n in [1usize, 2, 5, 16] {
        let r = j.recent(n);
        assert_eq!(r.len(), n);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (40 - n as u64..40).collect();
        assert_eq!(
            seqs, expect,
            "recent({n}) is the newest suffix, oldest first"
        );
    }
    assert!(j.recent(0).is_empty());
}

#[test]
fn concurrent_writers_never_tear_the_sequence() {
    let j = EventJournal::new(256);
    let writers = 4;
    let per_writer = 2_000usize;
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let j = j.clone();
            thread::spawn(move || {
                for i in 0..per_writer {
                    j.record(pump(w * per_writer + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(j.recorded(), (writers * per_writer) as u64);
    // Retained events are strictly increasing with no duplicates:
    // eviction under contention loses only the oldest entries.
    let seqs: Vec<u64> = j.all().iter().map(|e| e.seq).collect();
    assert_eq!(seqs.len(), 256);
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seq order torn: {seqs:?}"
    );
}

/// Toggling one subsystem's enable bit while writers hammer every
/// subsystem: the toggled subsystem's events are the only ones that
/// may be skipped, disabled records consume no sequence numbers (the
/// retained ring stays gap-free), and the bit's final state wins.
#[test]
fn toggle_races_only_suppress_the_toggled_subsystem() {
    let j = EventJournal::new(4096);
    let stop = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..3)
        .map(|w| {
            let j = j.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                let mut wrote_lease = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // One per subsystem under toggle fire.
                    j.record(pump(w));
                    if j.record(TraceDetail::LeaseParked { session: w as u64 })
                        .is_some()
                    {
                        wrote_lease += 1;
                    }
                    j.record(TraceDetail::WindowSealed {
                        stage: 0,
                        watermark: 1,
                        released: 0,
                    });
                }
                wrote_lease
            })
        })
        .collect();

    let toggler = {
        let j = j.clone();
        thread::spawn(move || {
            for round in 0..500 {
                j.set_enabled(Subsystem::Lease, round % 2 == 0);
            }
            j.set_enabled(Subsystem::Lease, false);
        })
    };
    toggler.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let lease_written: u64 = writer_handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Final state: disabled means disabled, no matter the race history.
    assert!(!j.enabled(Subsystem::Lease));
    assert!(j.record(TraceDetail::LeaseParked { session: 9 }).is_none());
    assert!(j.enabled(Subsystem::Engine), "other subsystems untouched");

    // The retained ring is seq-continuous even though some records
    // were suppressed mid-stream: suppressed records never burn a seq.
    let seqs: Vec<u64> = j.all().iter().map(|e| e.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "gap in retained ring"
    );

    // Accounting: every lease event a writer saw acknowledged got a
    // sequence number; the journal's total covers all subsystems.
    let total = j.recorded();
    assert!(
        total >= lease_written,
        "recorded {total} < lease acks {lease_written}"
    );
}

/// `Subsystem::ALL` and the per-variant mapping stay in sync (a new
/// subsystem must extend both).
#[test]
fn all_subsystems_toggle_independently() {
    let j = EventJournal::new(8);
    for &s in Subsystem::ALL.iter() {
        j.set_enabled(s, false);
        assert!(!j.enabled(s));
        for &other in Subsystem::ALL.iter().filter(|&&o| o != s) {
            assert!(j.enabled(other), "disabling {s:?} leaked onto {other:?}");
        }
        j.set_enabled(s, true);
        assert!(j.enabled(s));
    }
}
