//! Causal batch tracing: deterministically sampled trace IDs with
//! bounded span storage.
//!
//! Counters aggregate and the journal orders events, but neither can
//! answer *why this result was slow*: that needs one batch followed
//! causally through pump → route → exchange-forward → seal → emit with
//! nanosecond timings at each hop. [`TraceStore`] is that layer's
//! substrate:
//!
//! - **Deterministic sampling.** [`TraceStore::sample`] elects 1-in-N
//!   batches by their publish ordinal (`(ordinal + seed) % every == 0`),
//!   so the *same* batches are traced on every run of the same feed —
//!   a reproduction run traces the same work the incident did. The
//!   trace ID itself is a seeded hash of the ordinal, stable for the
//!   same `(ordinal, seed)` pair.
//! - **Zero cost when off or unsampled.** An unsampled batch pays one
//!   relaxed load and a modulo — no allocation, no clock read, no
//!   lock. With `every == 0` (the default) the store is inert.
//! - **Bounded.** Spans land in a mutex-guarded ring that retains the
//!   newest `capacity` entries; [`TraceStore::recorded`] keeps the
//!   lifetime total so evictions are visible.
//!
//! The engine only ever touches the store at batch granularity
//! (pump/route/seal), never per tuple, so the ring lock stays far off
//! the hot path even for sampled batches.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where in the pipeline a span was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A sampled batch entered the engine (`push_batch`). The root of
    /// its trace.
    Pump,
    /// A routed run was delivered into one `(stage, shard)` slot.
    Route,
    /// Sealed exchange-pool input was forwarded into a stage.
    ExchangeForward,
    /// A stage's watermark broadcast + drain barrier (windows closing).
    Seal,
    /// Completed sink output was released to the caller.
    Emit,
}

/// One recorded span: a timed hop of a sampled batch's journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Store-assigned, monotonic across the store's lifetime.
    pub seq: u64,
    /// The owning trace (nonzero; shared by every span of one sampled
    /// batch's journey).
    pub trace: u64,
    /// Parent span's `seq` (`None` for the `Pump` root).
    pub parent: Option<u64>,
    pub kind: SpanKind,
    pub stage: usize,
    /// Shard the span is attributed to (0 where the hop is not
    /// shard-specific, e.g. `Seal` covers a whole stage).
    pub shard: usize,
    /// Tuples the hop moved (routed, forwarded, released, ...).
    pub tuples: usize,
    /// Wall time the hop took.
    pub elapsed_ns: u64,
}

/// Bounded span store handle; `Clone` shares the ring and the sampling
/// configuration.
#[derive(Debug, Clone)]
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// Sample 1-in-`every` batches; 0 disables tracing entirely.
    every: AtomicU64,
    seed: AtomicU64,
    /// Next span sequence number.
    seq: AtomicU64,
    /// Batches elected by `sample` over the store's lifetime.
    sampled: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TraceStore {
    /// A store retaining the newest `capacity` spans, sampling
    /// disabled.
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            inner: Arc::new(StoreInner {
                every: AtomicU64::new(0),
                seed: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                sampled: AtomicU64::new(0),
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Sample 1-in-`every` batches (by publish ordinal), seeded so the
    /// elected residue class — and the trace IDs — are reproducible.
    /// `every == 0` turns tracing off.
    pub fn configure(&self, every: u64, seed: u64) {
        self.inner.seed.store(seed, Ordering::Relaxed);
        self.inner.every.store(every, Ordering::Relaxed);
    }

    /// The configured sampling interval (0 = off).
    pub fn sample_every(&self) -> u64 {
        self.inner.every.load(Ordering::Relaxed)
    }

    /// Elect or pass over the batch with publish ordinal `ordinal`.
    /// Returns the batch's trace ID when elected. The unsampled path
    /// is one relaxed load plus a modulo: no allocation, no lock.
    #[inline]
    pub fn sample(&self, ordinal: u64) -> Option<u64> {
        let every = self.inner.every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let seed = self.inner.seed.load(Ordering::Relaxed);
        if !ordinal.wrapping_add(seed).is_multiple_of(every) {
            return None;
        }
        self.inner.sampled.fetch_add(1, Ordering::Relaxed);
        // Nonzero by construction so 0 can mean "no trace" on wires.
        Some(mix(ordinal ^ seed.rotate_left(32)) | 1)
    }

    /// Record one span; returns its store-assigned sequence number
    /// (the value children pass as `parent`).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace: u64,
        parent: Option<u64>,
        kind: SpanKind,
        stage: usize,
        shard: usize,
        tuples: usize,
        elapsed_ns: u64,
    ) -> u64 {
        let inner = &*self.inner;
        let mut ring = inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        // Claimed under the lock: retained spans are always seq-ordered.
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let span = Span {
            seq,
            trace,
            parent,
            kind,
            stage,
            shard,
            tuples,
            elapsed_ns,
        };
        if ring.len() == inner.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
        seq
    }

    /// Spans recorded over the store's lifetime (≥ the ring's length).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Batches elected by [`TraceStore::sample`] over the lifetime.
    pub fn sampled(&self) -> u64 {
        self.inner.sampled.load(Ordering::Relaxed)
    }

    /// The newest retained spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// Every retained span, oldest first.
    pub fn all(&self) -> Vec<Span> {
        let ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().cloned().collect()
    }

    /// Two handles over the same ring?
    pub fn same_cell(&self, other: &TraceStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for TraceStore {
    /// 4096 spans: several hundred fully-spanned traced batches.
    fn default() -> Self {
        TraceStore::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_store_samples_nothing() {
        let t = TraceStore::new(16);
        for i in 0..100 {
            assert!(t.sample(i).is_none());
        }
        assert_eq!(t.sampled(), 0);
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn sampling_is_one_in_n_and_deterministic() {
        let t = TraceStore::new(16);
        t.configure(4, 7);
        let elected: Vec<u64> = (0..32).filter(|&i| t.sample(i).is_some()).collect();
        assert_eq!(elected.len(), 8, "1-in-4 over 32 ordinals");
        // Same residue class every time: consecutive elections 4 apart.
        for w in elected.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
        // Same (ordinal, seed) → same trace id; different seed → a
        // different residue class or different ids.
        let t2 = TraceStore::new(16);
        t2.configure(4, 7);
        for &i in &elected {
            assert_eq!(t.sample(i), t2.sample(i));
        }
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let t = TraceStore::new(16);
        t.configure(1, 99);
        let ids: Vec<u64> = (0..64).filter_map(|i| t.sample(i)).collect();
        assert_eq!(ids.len(), 64);
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids collide");
    }

    #[test]
    fn ring_is_bounded_with_monotonic_seq() {
        let t = TraceStore::new(4);
        for i in 0..10 {
            t.record(1, None, SpanKind::Route, 0, i, 1, 5);
        }
        let spans = t.all();
        assert_eq!(spans.len(), 4);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn parent_links_roundtrip() {
        let t = TraceStore::default();
        let root = t.record(42, None, SpanKind::Pump, 0, 0, 128, 1_000);
        let child = t.record(42, Some(root), SpanKind::Seal, 0, 0, 64, 2_000);
        let spans = t.all();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root));
        assert!(child > root);
    }
}
