//! # ustream-telemetry — always-on observability primitives
//!
//! The paper's premise is that "processing of raw data must keep up
//! with stream speed" (§1); this crate makes that claim *observable*
//! while it happens instead of after the fact. Every primitive is
//! cheap enough to leave enabled in production paths:
//!
//! - [`Counter`] / [`Gauge`] — single atomic cells, wait-free updates.
//! - [`Histogram`] — fixed exponential buckets, one atomic add per
//!   record.
//! - [`QuantileSketch`] — O(1)-memory incremental quantile estimates
//!   (p50/p95/p99) in the style of Chambers, James, Lambert & Vander
//!   Wiel, *Monitoring Networked Applications With Incremental
//!   Quantile Estimation* (Statistical Science, 2006): samples are
//!   buffered in blocks and folded into a fixed set of running marker
//!   estimates by weighted pooling, so no stream of any length ever
//!   stores more than a bounded ring of raw values. The record path is
//!   wait-free for the (single logical) writer; readers never block
//!   writers.
//! - [`EventJournal`] — a bounded ring of typed [`TraceEvent`]s with a
//!   monotonic sequence number and per-[`Subsystem`] enable bits.
//! - [`MetricsRegistry`] — names (family + labels) to handles, with
//!   [`MetricsRegistry::snapshot`] for wire transport and
//!   [`MetricsRegistry::render_text`] for Prometheus-style scraping.
//! - [`TraceStore`] — deterministically sampled causal tracing:
//!   1-in-N batches (by publish ordinal, seedable) carry a trace ID,
//!   and their pump/route/exchange/seal/emit hops land as timed
//!   [`Span`]s with parent links in a bounded ring. Unsampled batches
//!   pay one relaxed load.
//! - [`HealthWatchdog`] — a periodic evaluator over a registry
//!   producing typed [`HealthReport`]s (lag-SLO breaches, shard skew,
//!   queue saturation, stuck-stage and silent-publisher detection),
//!   journaling every status transition.
//!
//! The crate is dependency-free on purpose: it sits *below* the engine
//! crates, which thread its handles through their hot paths.

pub mod health;
pub mod journal;
pub mod metric;
pub mod registry;
pub mod sketch;
pub mod trace;

pub use health::{HealthCheck, HealthConfig, HealthReport, HealthStatus, HealthWatchdog};
pub use journal::{EventJournal, Subsystem, TraceDetail, TraceEvent};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricSnapshot, MetricValue, MetricsRegistry};
pub use sketch::{QuantileSketch, SketchSnapshot};
pub use trace::{Span, SpanKind, TraceStore};
