//! Incremental quantile estimation with bounded memory.
//!
//! The estimator follows Chambers, James, Lambert & Vander Wiel,
//! *Monitoring Networked Applications With Incremental Quantile
//! Estimation* (Statistical Science 21(4), 2006): instead of storing
//! the stream, keep a fixed grid of running quantile estimates
//! ("markers") and, for each arriving block of raw samples, replace the
//! markers with the quantiles of the *pooled* distribution — the old
//! markers weighted by how many samples they summarize, plus the new
//! block's order statistics weighted one each. Every update is a
//! stochastic approximation step toward the stream's true quantile
//! function; memory stays O(markers + block) forever.
//!
//! ## Concurrency contract
//!
//! The record path is wait-free: a sample is one `fetch_add` on the
//! ring cursor plus one atomic store, and — on block boundaries — the
//! recording thread folds the completed block into the markers. Marker
//! state is published through a seqlock of plain atomics, so readers
//! ([`QuantileSketch::quantile`], [`QuantileSketch::snapshot`]) never
//! block writers and never see torn `f64`s.
//!
//! The sketch assumes **one logical writer** (every integration in
//! this workspace records from a single engine/driver thread). With
//! concurrent writers nothing is unsafe and nothing blocks, but a
//! sample may occasionally be folded twice or replaced by a stale ring
//! slot — estimates remain statistical, exactness is not promised.
//! Single-threaded use is exactly deterministic: the same stream
//! always yields the same estimates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Raw samples buffered per stochastic-approximation step.
const BLOCK: usize = 64;
/// Ring capacity for not-yet-absorbed samples (4 blocks deep).
const RING: usize = 256;
/// Running marker estimates at probabilities `i / (MARKERS - 1)`.
const MARKERS: usize = 65;

/// How many times a reader retries for a seq-consistent marker copy
/// before accepting a (sorted, still sane) possibly-mixed copy.
const READ_RETRIES: usize = 16;

struct Inner {
    /// Unabsorbed raw samples, as `f64` bits; slot `i % RING` holds
    /// record `i`.
    ring: Vec<AtomicU64>,
    /// Total records accepted (monotonic; assigns ring slots).
    cursor: AtomicU64,
    /// Single-absorber guard for the fold step.
    absorbing: AtomicBool,
    /// Seqlock generation for the marker state below (odd = mid-write).
    seq: AtomicU64,
    /// Marker estimates, as `f64` bits, ascending.
    markers: Vec<AtomicU64>,
    /// How many samples the markers summarize.
    weight: AtomicU64,
    /// Records folded so far (the ring drain position).
    absorbed: AtomicU64,
}

/// A streaming quantile estimator; `Clone` shares the underlying state.
#[derive(Clone)]
pub struct QuantileSketch {
    inner: Arc<Inner>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

/// A point-in-time summary of a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            inner: Arc::new(Inner {
                ring: (0..RING).map(|_| AtomicU64::new(0)).collect(),
                cursor: AtomicU64::new(0),
                absorbing: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                markers: (0..MARKERS).map(|_| AtomicU64::new(0)).collect(),
                weight: AtomicU64::new(0),
                absorbed: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation. Non-finite values are ignored (a NaN
    /// has no rank). Wait-free; folds a completed block inline on
    /// every `BLOCK`-th record.
    #[inline]
    pub fn record(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let inner = &*self.inner;
        let i = inner.cursor.fetch_add(1, Ordering::AcqRel);
        inner.ring[(i % RING as u64) as usize].store(x.to_bits(), Ordering::Release);
        if (i + 1).is_multiple_of(BLOCK as u64) {
            self.try_absorb(i + 1);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.cursor.load(Ordering::Acquire)
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`); `None`
    /// until anything has been recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let atoms = self.atoms();
        if atoms.is_empty() {
            return None;
        }
        Some(weighted_quantile(&atoms, q.clamp(0.0, 1.0)))
    }

    /// Count, extremes, and the headline quantiles in one pass.
    pub fn snapshot(&self) -> SketchSnapshot {
        let atoms = self.atoms();
        if atoms.is_empty() {
            return SketchSnapshot {
                count: 0,
                min: f64::NAN,
                max: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
            };
        }
        let count = atoms.iter().map(|a| a.1).sum::<f64>().round() as u64;
        SketchSnapshot {
            count,
            min: atoms.first().map(|a| a.0).unwrap_or(f64::NAN),
            max: atoms.last().map(|a| a.0).unwrap_or(f64::NAN),
            p50: weighted_quantile(&atoms, 0.50),
            p90: weighted_quantile(&atoms, 0.90),
            p95: weighted_quantile(&atoms, 0.95),
            p99: weighted_quantile(&atoms, 0.99),
        }
    }

    /// Pool two sketches into a fresh one summarizing both streams.
    /// Deterministic, commutative up to interpolation, and associative
    /// within the estimator's tolerance — the summary of a distributed
    /// stream can be assembled in any merge order.
    pub fn merged(a: &QuantileSketch, b: &QuantileSketch) -> QuantileSketch {
        let mut atoms = a.atoms();
        atoms.extend(b.atoms());
        atoms.sort_by(|x, y| x.0.total_cmp(&y.0));
        let out = QuantileSketch::new();
        if atoms.is_empty() {
            return out;
        }
        let total: f64 = atoms.iter().map(|a| a.1).sum();
        let grid = extract_grid(&atoms);
        let n = total.round() as u64;
        let inner = &*out.inner;
        for (slot, v) in inner.markers.iter().zip(&grid) {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
        inner.weight.store(n, Ordering::Relaxed);
        inner.absorbed.store(n, Ordering::Relaxed);
        inner.cursor.store(n, Ordering::Release);
        out
    }

    /// Do two handles share the same cells?
    pub fn same_cell(&self, other: &QuantileSketch) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Fold every complete record up to `upto` into the markers. Only
    /// one thread absorbs at a time; losers simply return (their block
    /// is picked up by the next fold).
    fn try_absorb(&self, upto: u64) {
        let inner = &*self.inner;
        if inner
            .absorbing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let lo = inner.absorbed.load(Ordering::Acquire);
        if upto > lo && upto - lo <= RING as u64 {
            let mut block: Vec<f64> = (lo..upto)
                .map(|j| {
                    f64::from_bits(inner.ring[(j % RING as u64) as usize].load(Ordering::Acquire))
                })
                .filter(|v| v.is_finite())
                .collect();
            block.sort_by(f64::total_cmp);
            let (markers, weight, _) = self.read_marker_state();
            let mut atoms = marker_atoms(&markers, weight);
            atoms.extend(block.iter().map(|&v| (v, 1.0)));
            atoms.sort_by(|x, y| x.0.total_cmp(&y.0));
            let grid = extract_grid(&atoms);
            // Publish under the seqlock: bump to odd, write, bump to even.
            inner.seq.fetch_add(1, Ordering::Release);
            for (slot, v) in inner.markers.iter().zip(&grid) {
                slot.store(v.to_bits(), Ordering::Relaxed);
            }
            inner
                .weight
                .store(weight + block.len() as u64, Ordering::Relaxed);
            inner.absorbed.store(upto, Ordering::Relaxed);
            inner.seq.fetch_add(1, Ordering::Release);
        }
        inner.absorbing.store(false, Ordering::Release);
    }

    /// A seq-consistent copy of `(markers, weight, absorbed)`. After
    /// bounded retries under writer pressure, falls back to a sorted
    /// possibly-mixed copy — still a sane marker vector, never torn
    /// floats.
    fn read_marker_state(&self) -> (Vec<f64>, u64, u64) {
        let inner = &*self.inner;
        let mut markers = vec![0.0f64; MARKERS];
        let mut weight = 0u64;
        let mut absorbed = 0u64;
        for attempt in 0..READ_RETRIES {
            let s1 = inner.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 && attempt + 1 < READ_RETRIES {
                std::hint::spin_loop();
                continue;
            }
            for (dst, slot) in markers.iter_mut().zip(&inner.markers) {
                *dst = f64::from_bits(slot.load(Ordering::Relaxed));
            }
            weight = inner.weight.load(Ordering::Relaxed);
            absorbed = inner.absorbed.load(Ordering::Relaxed);
            let s2 = inner.seq.load(Ordering::Acquire);
            if s1 == s2 && s1.is_multiple_of(2) {
                return (markers, weight, absorbed);
            }
        }
        markers.sort_by(f64::total_cmp);
        (markers, weight, absorbed)
    }

    /// The full current state as weighted atoms, sorted ascending:
    /// markers (each carrying `weight / MARKERS`) plus the unabsorbed
    /// ring tail (weight 1 each).
    fn atoms(&self) -> Vec<(f64, f64)> {
        let inner = &*self.inner;
        let (markers, weight, absorbed) = self.read_marker_state();
        let mut atoms = marker_atoms(&markers, weight);
        let hi = inner.cursor.load(Ordering::Acquire);
        let lo = absorbed.max(hi.saturating_sub(RING as u64));
        for j in lo..hi {
            let v = f64::from_bits(inner.ring[(j % RING as u64) as usize].load(Ordering::Acquire));
            if v.is_finite() {
                atoms.push((v, 1.0));
            }
        }
        atoms.sort_by(|x, y| x.0.total_cmp(&y.0));
        atoms
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("QuantileSketch")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p95", &s.p95)
            .field("p99", &s.p99)
            .finish()
    }
}

/// The marker summary as weighted atoms (empty while nothing has been
/// absorbed). Trapezoid weighting — interior markers carry
/// `weight / (MARKERS - 1)`, the two extremes half that — places each
/// interior atom's midpoint cumulative rank exactly at its grid
/// probability `i / (MARKERS - 1)`, so re-extracting the grid from an
/// unchanged summary reproduces the markers bit-for-bit (no drift
/// toward the extremes across folds).
fn marker_atoms(markers: &[f64], weight: u64) -> Vec<(f64, f64)> {
    if weight == 0 {
        return Vec::new();
    }
    let m = markers.len();
    let unit = weight as f64 / (m - 1) as f64;
    markers
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = if i == 0 || i == m - 1 {
                unit / 2.0
            } else {
                unit
            };
            (v, w)
        })
        .collect()
}

/// Read the `MARKERS`-point quantile grid off a sorted weighted atom
/// set, anchoring the ends at the exact extremes so running min/max
/// survive every fold.
fn extract_grid(atoms: &[(f64, f64)]) -> Vec<f64> {
    debug_assert!(!atoms.is_empty());
    (0..MARKERS)
        .map(|i| {
            if i == 0 {
                atoms[0].0
            } else if i == MARKERS - 1 {
                atoms[atoms.len() - 1].0
            } else {
                weighted_quantile(atoms, i as f64 / (MARKERS - 1) as f64)
            }
        })
        .collect()
}

/// Midpoint-interpolated weighted quantile of a sorted atom set: atom
/// `j` sits at cumulative probability `(C_{j-1} + w_j / 2) / W`, and
/// `p` interpolates linearly between straddling atoms (clamped to the
/// extremes). If interpolation overflows (atoms straddling ±huge),
/// falls back to the nearer atom — the estimate stays finite and
/// within the atoms' range.
fn weighted_quantile(atoms: &[(f64, f64)], p: f64) -> f64 {
    debug_assert!(!atoms.is_empty());
    let total: f64 = atoms.iter().map(|a| a.1).sum();
    let mut cum = 0.0f64;
    let mut prev: Option<(f64, f64)> = None; // (value, midpoint prob)
    for &(v, w) in atoms {
        let mid = (cum + w / 2.0) / total;
        if p <= mid {
            return match prev {
                None => v,
                Some((pv, pm)) => {
                    let span = mid - pm;
                    if span <= 0.0 {
                        return v;
                    }
                    let t = (p - pm) / span;
                    let r = pv + t * (v - pv);
                    if r.is_finite() {
                        r
                    } else if t < 0.5 {
                        pv
                    } else {
                        v
                    }
                }
            };
        }
        prev = Some((v, mid));
        cum += w;
    }
    atoms[atoms.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_rank(data: &[f64], est: f64) -> (f64, f64) {
        let below = data.iter().filter(|&&v| v < est).count() as f64;
        let at_or_below = data.iter().filter(|&&v| v <= est).count() as f64;
        (below / data.len() as f64, at_or_below / data.len() as f64)
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.count(), 0);
        assert!(s.snapshot().p50.is_nan());
    }

    #[test]
    fn small_stream_is_near_exact() {
        let s = QuantileSketch::new();
        for i in 0..10 {
            s.record(i as f64);
        }
        let p50 = s.quantile(0.5).unwrap();
        assert!((4.0..=5.0).contains(&p50), "p50 of 0..10 was {p50}");
        let snap = s.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 9.0);
    }

    #[test]
    fn long_stream_tracks_quantiles_within_rank_tolerance() {
        // A deterministic, shuffled-looking stream long enough to force
        // many fold steps.
        let n = 10_000usize;
        let data: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 10_000) as f64)
            .collect();
        let s = QuantileSketch::new();
        for &v in &data {
            s.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = s.quantile(q).unwrap();
            let (lo, hi) = exact_rank(&data, est);
            assert!(
                lo - 0.05 <= q && q <= hi + 0.05,
                "q={q}: estimate {est} has rank [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let s = QuantileSketch::new();
        for i in 0..1000 {
            s.record(i as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 999.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn merged_covers_both_streams() {
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        for i in 0..500 {
            a.record(i as f64);
            b.record((i + 500) as f64);
        }
        let m = QuantileSketch::merged(&a, &b);
        let snap = m.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 999.0);
        let p50 = m.quantile(0.5).unwrap();
        assert!((400.0..600.0).contains(&p50), "merged p50 was {p50}");
    }

    #[test]
    fn readers_do_not_disturb_the_stream() {
        let s = QuantileSketch::new();
        let mut probes = Vec::new();
        for i in 0..1000 {
            s.record(i as f64);
            if i % 97 == 0 {
                probes.push(s.quantile(0.5));
            }
        }
        // Rerun without probing: identical final estimate.
        let t = QuantileSketch::new();
        for i in 0..1000 {
            t.record(i as f64);
        }
        assert_eq!(s.quantile(0.5), t.quantile(0.5));
    }
}
