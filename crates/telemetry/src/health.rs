//! The health watchdog: a periodic evaluator over the metrics
//! registry that turns raw counters into a typed [`HealthReport`].
//!
//! The registry answers "what are the numbers"; the watchdog answers
//! "is this deployment okay" — a judgment with memory, because the
//! most dangerous states are the quiet ones: a stage whose pool holds
//! tuples while the sealed watermark has stopped moving, a publisher
//! that stopped publishing *and* stopped heartbeating. Each
//! [`HealthWatchdog::evaluate`] call therefore compares against the
//! previous evaluation's snapshot, and records a
//! [`TraceDetail::HealthChanged`] journal event whenever the overall
//! [`HealthStatus`] transitions — the flight recorder keeps the exact
//! interleaving of engine events and health-state changes.
//!
//! Checks (each optional, gated by [`HealthConfig`]):
//!
//! - **Lag SLO** — any per-stage `engine_watermark_lag` p99 above
//!   [`HealthConfig::lag_slo_p99`] (twice the SLO escalates to
//!   `Critical`).
//! - **Shard skew** — per stage, max/mean of
//!   `engine_shard_routed_tuples_total` above
//!   [`HealthConfig::skew_ratio`] once enough tuples routed to judge.
//! - **Queue saturation** — any `server_subscriber_queue_depth` at or
//!   above [`HealthConfig::queue_saturation`] of the configured
//!   capacity (a full queue escalates to `Critical`).
//! - **Stuck stage** — pooled exchange input with no sealed-watermark
//!   progress since the previous evaluation.
//! - **Silent publisher** — publish frames and heartbeats both frozen
//!   since the previous evaluation while the stream has not reached
//!   EOS.

use crate::journal::{EventJournal, TraceDetail};
use crate::registry::{MetricSnapshot, MetricValue, MetricsRegistry};
use std::sync::{Arc, Mutex};

/// Overall (or per-check) condition, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HealthStatus {
    Healthy = 0,
    /// Degrading but serving: an SLO breach, skew, or saturation.
    Degraded = 1,
    /// Results are stalled or about to be lost.
    Critical = 2,
}

impl HealthStatus {
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    pub fn from_u8(tag: u8) -> Option<HealthStatus> {
        match tag {
            0 => Some(HealthStatus::Healthy),
            1 => Some(HealthStatus::Degraded),
            2 => Some(HealthStatus::Critical),
            _ => None,
        }
    }
}

/// One failed check. Passing checks are not reported — an empty
/// [`HealthReport::checks`] means everything passed.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthCheck {
    /// Stable check identifier, e.g. `lag_slo`, `shard_skew`,
    /// `queue_saturation`, `stuck_stage`, `silent_publisher`.
    pub name: String,
    pub status: HealthStatus,
    /// The observed value that tripped the check.
    pub value: f64,
    /// The configured threshold it tripped against.
    pub threshold: f64,
    /// Human-readable context (which stage, which subscriber, ...).
    pub detail: String,
}

/// A typed point-in-time health judgment.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The worst status across checks (`Healthy` when none failed).
    pub status: HealthStatus,
    /// Failed checks only, in evaluation order.
    pub checks: Vec<HealthCheck>,
    /// Evaluations performed so far, this one included. The
    /// stateful checks (stuck stage, silent publisher) need two; a
    /// report with `evaluations == 1` has not run them yet.
    pub evaluations: u64,
}

/// Watchdog thresholds. Every check can be disabled: an infinite SLO,
/// a zero capacity, a zero activity floor.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Per-stage watermark-lag p99 SLO in event-time units; breaches
    /// are `Degraded`, twice the SLO is `Critical`. `INFINITY`
    /// disables the check (the default — lag scale is app-defined).
    pub lag_slo_p99: f64,
    /// Max/mean routed-tuples ratio per stage before `shard_skew`
    /// fires.
    pub skew_ratio: f64,
    /// Tuples a stage must have routed before skew is judged (small
    /// samples skew trivially).
    pub skew_min_tuples: u64,
    /// Fraction of subscriber-queue capacity at which
    /// `queue_saturation` fires (`Degraded`); a full queue is
    /// `Critical`.
    pub queue_saturation: f64,
    /// The subscriber queue capacity the depth gauges are bounded by;
    /// 0 disables the saturation check (the server fills this in from
    /// its own config).
    pub subscriber_capacity: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            lag_slo_p99: f64::INFINITY,
            skew_ratio: 4.0,
            skew_min_tuples: 1024,
            queue_saturation: 0.8,
            subscriber_capacity: 0,
        }
    }
}

/// The evaluator handle; `Clone` shares the state, so a background
/// ticker and an on-demand wire endpoint see one transition history.
#[derive(Debug, Clone)]
pub struct HealthWatchdog {
    inner: Arc<WatchdogInner>,
}

#[derive(Debug)]
struct WatchdogInner {
    config: HealthConfig,
    registry: MetricsRegistry,
    journal: EventJournal,
    state: Mutex<WatchState>,
}

#[derive(Debug)]
struct WatchState {
    last_status: HealthStatus,
    prev_sealed: i64,
    prev_publish_activity: u64,
    evaluations: u64,
}

/// Sum a counter family across label sets.
fn counter_sum(metrics: &[MetricSnapshot], family: &str) -> u64 {
    metrics
        .iter()
        .filter(|m| m.family == family)
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

fn label<'a>(m: &'a MetricSnapshot, key: &str) -> &'a str {
    m.labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or("?")
}

impl HealthWatchdog {
    pub fn new(config: HealthConfig, registry: MetricsRegistry, journal: EventJournal) -> Self {
        HealthWatchdog {
            inner: Arc::new(WatchdogInner {
                config,
                registry,
                journal,
                state: Mutex::new(WatchState {
                    last_status: HealthStatus::Healthy,
                    prev_sealed: 0,
                    prev_publish_activity: 0,
                    evaluations: 0,
                }),
            }),
        }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.inner.config
    }

    /// Run every check against a fresh registry snapshot, update the
    /// transition state, and journal a [`TraceDetail::HealthChanged`]
    /// if the overall status moved.
    pub fn evaluate(&self) -> HealthReport {
        let cfg = &self.inner.config;
        let metrics = self.inner.registry.snapshot();
        let mut checks: Vec<HealthCheck> = Vec::new();

        // Per-stage lag SLO over the watermark-lag sketches.
        if cfg.lag_slo_p99.is_finite() {
            for m in metrics
                .iter()
                .filter(|m| m.family == "engine_watermark_lag")
            {
                let MetricValue::Sketch(s) = &m.value else {
                    continue;
                };
                if s.count == 0 || s.p99 <= cfg.lag_slo_p99 {
                    continue;
                }
                let status = if s.p99 > 2.0 * cfg.lag_slo_p99 {
                    HealthStatus::Critical
                } else {
                    HealthStatus::Degraded
                };
                checks.push(HealthCheck {
                    name: "lag_slo".into(),
                    status,
                    value: s.p99,
                    threshold: cfg.lag_slo_p99,
                    detail: format!("stage {} watermark-lag p99 over SLO", label(m, "stage")),
                });
            }
        }

        // Shard skew: per stage, max/mean of routed tuples.
        {
            let mut stages: Vec<(String, Vec<u64>)> = Vec::new();
            for m in metrics
                .iter()
                .filter(|m| m.family == "engine_shard_routed_tuples_total")
            {
                let MetricValue::Counter(v) = m.value else {
                    continue;
                };
                let stage = label(m, "stage").to_string();
                match stages.iter_mut().find(|(s, _)| *s == stage) {
                    Some((_, v_list)) => v_list.push(v),
                    None => stages.push((stage, vec![v])),
                }
            }
            for (stage, routed) in stages {
                let total: u64 = routed.iter().sum();
                if routed.len() < 2 || total < cfg.skew_min_tuples {
                    continue;
                }
                let max = *routed.iter().max().expect("non-empty") as f64;
                let mean = total as f64 / routed.len() as f64;
                let ratio = max / mean;
                if ratio > cfg.skew_ratio {
                    checks.push(HealthCheck {
                        name: "shard_skew".into(),
                        status: HealthStatus::Degraded,
                        value: ratio,
                        threshold: cfg.skew_ratio,
                        detail: format!("stage {stage} hottest shard at {ratio:.2}x the mean"),
                    });
                }
            }
        }

        // Subscriber queue saturation against the configured bound.
        if cfg.subscriber_capacity > 0 {
            for m in metrics
                .iter()
                .filter(|m| m.family == "server_subscriber_queue_depth")
            {
                let MetricValue::Gauge(depth) = m.value else {
                    continue;
                };
                let frac = depth.max(0) as f64 / cfg.subscriber_capacity as f64;
                if frac >= cfg.queue_saturation {
                    let status = if frac >= 1.0 {
                        HealthStatus::Critical
                    } else {
                        HealthStatus::Degraded
                    };
                    checks.push(HealthCheck {
                        name: "queue_saturation".into(),
                        status,
                        value: frac,
                        threshold: cfg.queue_saturation,
                        detail: format!(
                            "subscriber {} outbox at {depth}/{}",
                            label(m, "client"),
                            cfg.subscriber_capacity
                        ),
                    });
                }
            }
        }

        // The stateful checks compare against the previous evaluation.
        let sealed = metrics
            .iter()
            .find(|m| m.family == "engine_watermark_sealed")
            .and_then(|m| match m.value {
                MetricValue::Gauge(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0);
        let pooled: i64 = metrics
            .iter()
            .filter(|m| m.family == "engine_stage_pool_depth")
            .map(|m| match m.value {
                MetricValue::Gauge(v) => v.max(0),
                _ => 0,
            })
            .sum();
        let publish_activity = counter_sum(&metrics, "server_publish_frames_total")
            + counter_sum(&metrics, "server_heartbeats_total");
        let eos = counter_sum(&metrics, "server_eos_total");

        let mut st = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.evaluations > 0 {
            if pooled > 0 && sealed == st.prev_sealed {
                checks.push(HealthCheck {
                    name: "stuck_stage".into(),
                    status: HealthStatus::Critical,
                    value: pooled as f64,
                    threshold: 0.0,
                    detail: format!(
                        "{pooled} tuples pooled with no sealed-watermark progress since the \
                         previous evaluation (sealed={sealed})"
                    ),
                });
            }
            if publish_activity > 0 && publish_activity == st.prev_publish_activity && eos == 0 {
                checks.push(HealthCheck {
                    name: "silent_publisher".into(),
                    status: HealthStatus::Degraded,
                    value: publish_activity as f64,
                    threshold: 0.0,
                    detail: "no publish frames or heartbeats since the previous evaluation \
                             and the stream has not reached EOS"
                        .into(),
                });
            }
        }
        st.prev_sealed = sealed;
        st.prev_publish_activity = publish_activity;
        st.evaluations += 1;

        let status = checks
            .iter()
            .map(|c| c.status)
            .max()
            .unwrap_or(HealthStatus::Healthy);
        if status != st.last_status {
            self.inner.journal.record(TraceDetail::HealthChanged {
                from: st.last_status,
                to: status,
            });
            st.last_status = status;
        }
        let evaluations = st.evaluations;
        drop(st);

        HealthReport {
            status,
            checks,
            evaluations,
        }
    }

    /// The status the most recent evaluation settled on.
    pub fn last_status(&self) -> HealthStatus {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .last_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Subsystem;

    fn watchdog(config: HealthConfig) -> (HealthWatchdog, MetricsRegistry, EventJournal) {
        let registry = MetricsRegistry::new();
        let journal = EventJournal::new(64);
        let w = HealthWatchdog::new(config, registry.clone(), journal.clone());
        (w, registry, journal)
    }

    #[test]
    fn empty_registry_is_healthy() {
        let (w, _, _) = watchdog(HealthConfig::default());
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Healthy);
        assert!(r.checks.is_empty());
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn lag_slo_breach_degrades_and_escalates() {
        let (w, registry, _) = watchdog(HealthConfig {
            lag_slo_p99: 100.0,
            ..HealthConfig::default()
        });
        let lag = registry.sketch_with("engine_watermark_lag", &[("stage", "0")]);
        for _ in 0..64 {
            lag.record(150.0);
        }
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.checks[0].name, "lag_slo");
        for _ in 0..512 {
            lag.record(500.0);
        }
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Critical, "2x SLO escalates");
    }

    #[test]
    fn shard_skew_fires_over_min_sample() {
        // With 2 shards max/mean is bounded by 2.0, so a 1.5x budget
        // catches the 990/10 split (ratio 1.98).
        let (w, registry, _) = watchdog(HealthConfig {
            skew_ratio: 1.5,
            skew_min_tuples: 100,
            ..HealthConfig::default()
        });
        registry
            .counter_with(
                "engine_shard_routed_tuples_total",
                &[("stage", "0"), ("shard", "0")],
            )
            .add(990);
        registry
            .counter_with(
                "engine_shard_routed_tuples_total",
                &[("stage", "0"), ("shard", "1")],
            )
            .add(10);
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.checks[0].name, "shard_skew");
        assert!(r.checks[0].value > 1.9);
    }

    #[test]
    fn queue_saturation_critical_when_full() {
        let (w, registry, _) = watchdog(HealthConfig {
            queue_saturation: 0.5,
            subscriber_capacity: 10,
            ..HealthConfig::default()
        });
        registry
            .gauge_with("server_subscriber_queue_depth", &[("client", "3")])
            .set(10);
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Critical);
        assert_eq!(r.checks[0].name, "queue_saturation");
    }

    #[test]
    fn stuck_stage_needs_two_evaluations() {
        let (w, registry, _) = watchdog(HealthConfig::default());
        registry
            .gauge_with("engine_stage_pool_depth", &[("stage", "1")])
            .set(42);
        registry.gauge("engine_watermark_sealed").set(1000);
        let r = w.evaluate();
        assert_eq!(
            r.status,
            HealthStatus::Healthy,
            "first evaluation has no baseline"
        );
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Critical);
        assert_eq!(r.checks[0].name, "stuck_stage");
        // Progress clears it.
        registry.gauge("engine_watermark_sealed").set(2000);
        assert_eq!(w.evaluate().status, HealthStatus::Healthy);
    }

    #[test]
    fn silent_publisher_detected_until_eos() {
        let (w, registry, _) = watchdog(HealthConfig::default());
        registry.counter("server_publish_frames_total").add(5);
        w.evaluate();
        let r = w.evaluate();
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.checks[0].name, "silent_publisher");
        // EOS reached: silence is the normal end state.
        registry.counter("server_eos_total").inc();
        assert_eq!(w.evaluate().status, HealthStatus::Healthy);
    }

    #[test]
    fn transitions_are_journaled_once() {
        let (w, registry, journal) = watchdog(HealthConfig {
            lag_slo_p99: 10.0,
            ..HealthConfig::default()
        });
        w.evaluate();
        assert_eq!(
            journal.all().len(),
            0,
            "healthy → healthy is not a transition"
        );
        let lag = registry.sketch_with("engine_watermark_lag", &[("stage", "0")]);
        for _ in 0..64 {
            lag.record(15.0);
        }
        w.evaluate();
        w.evaluate();
        let events = journal.all();
        assert_eq!(
            events.len(),
            1,
            "repeated degraded states journal one transition"
        );
        assert_eq!(events[0].detail.subsystem(), Subsystem::Health);
        assert_eq!(
            events[0].detail,
            TraceDetail::HealthChanged {
                from: HealthStatus::Healthy,
                to: HealthStatus::Degraded,
            }
        );
        assert_eq!(w.last_status(), HealthStatus::Degraded);
    }
}
