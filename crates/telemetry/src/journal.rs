//! A bounded, structured event journal: the engine's flight recorder.
//!
//! Counters say *how much*; the journal says *what happened, in what
//! order*. Each [`TraceEvent`] carries a monotonic sequence number
//! assigned at record time, so interleavings across subsystems are
//! reconstructible even after the bounded ring has evicted older
//! entries. Recording is gated per [`Subsystem`] by an atomic bit mask
//! — a disabled subsystem pays one relaxed load and nothing else.
//!
//! The ring itself is a mutex-guarded deque: events are batch-, window-
//! and session-granular (never per-tuple), so the lock is touched a few
//! times per engine pump, far off any per-tuple path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Event sources that can be enabled/disabled independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Subsystem {
    /// Batches pumped through the engine.
    Engine = 0,
    /// Shard routing and exchange forwarding.
    Exchange = 1,
    /// Window sealing (watermark advances releasing output).
    Window = 2,
    /// Server request handling (gaps, subscriber shedding).
    Server = 3,
    /// Session lease lifecycle.
    Lease = 4,
    /// Health-watchdog state transitions.
    Health = 5,
}

impl Subsystem {
    fn bit(self) -> u64 {
        1u64 << (self as u8)
    }

    pub const ALL: [Subsystem; 6] = [
        Subsystem::Engine,
        Subsystem::Exchange,
        Subsystem::Window,
        Subsystem::Server,
        Subsystem::Lease,
        Subsystem::Health,
    ];
}

/// What happened. Every variant names its subsystem via
/// [`TraceDetail::subsystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDetail {
    /// A batch entered the engine at `(node, port)`.
    BatchPumped {
        node: usize,
        port: usize,
        tuples: usize,
    },
    /// A watermark advance sealed windows and released output.
    WindowSealed {
        stage: usize,
        watermark: u64,
        released: usize,
    },
    /// A batch was routed to `(stage, shard)`.
    ShardRouted {
        stage: usize,
        shard: usize,
        tuples: usize,
    },
    /// Sealed exchange output was forwarded downstream to `stage`.
    ExchangeForwarded { stage: usize, tuples: usize },
    /// A publisher vanished; its session parked under a lease.
    LeaseParked { session: u64 },
    /// A parked session was resumed before its lease ran out.
    LeaseResumed { session: u64 },
    /// A parked session's lease expired unresumed.
    LeaseExpired { session: u64 },
    /// A subscriber was told it missed `missed` result frames.
    GapEmitted { subscriber: u64, missed: u64 },
    /// The health watchdog's overall status transitioned.
    HealthChanged {
        from: crate::health::HealthStatus,
        to: crate::health::HealthStatus,
    },
}

impl TraceDetail {
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceDetail::BatchPumped { .. } => Subsystem::Engine,
            TraceDetail::WindowSealed { .. } => Subsystem::Window,
            TraceDetail::ShardRouted { .. } | TraceDetail::ExchangeForwarded { .. } => {
                Subsystem::Exchange
            }
            TraceDetail::GapEmitted { .. } => Subsystem::Server,
            TraceDetail::LeaseParked { .. }
            | TraceDetail::LeaseResumed { .. }
            | TraceDetail::LeaseExpired { .. } => Subsystem::Lease,
            TraceDetail::HealthChanged { .. } => Subsystem::Health,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic across the journal; gaps mean the ring evicted
    /// entries (or a subsystem was disabled — disabled records do not
    /// consume sequence numbers).
    pub seq: u64,
    pub detail: TraceDetail,
}

/// Bounded journal handle; `Clone` shares the ring.
#[derive(Debug, Clone)]
pub struct EventJournal {
    inner: Arc<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    seq: AtomicU64,
    /// Per-subsystem enable bits (bit set = enabled).
    mask: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl EventJournal {
    /// A journal retaining the newest `capacity` events, all
    /// subsystems enabled.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            inner: Arc::new(JournalInner {
                seq: AtomicU64::new(0),
                mask: AtomicU64::new(u64::MAX),
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Record an event if its subsystem is enabled; returns its
    /// sequence number when recorded.
    pub fn record(&self, detail: TraceDetail) -> Option<u64> {
        if !self.enabled(detail.subsystem()) {
            return None;
        }
        let inner = &*self.inner;
        let mut ring = inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        // Sequence numbers are claimed under the ring lock so retained
        // events are always in seq order, even with concurrent writers.
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        if ring.len() == inner.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent { seq, detail });
        Some(seq)
    }

    /// Enable or disable one subsystem.
    pub fn set_enabled(&self, subsystem: Subsystem, on: bool) {
        if on {
            self.inner.mask.fetch_or(subsystem.bit(), Ordering::Relaxed);
        } else {
            self.inner
                .mask
                .fetch_and(!subsystem.bit(), Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn enabled(&self, subsystem: Subsystem) -> bool {
        self.inner.mask.load(Ordering::Relaxed) & subsystem.bit() != 0
    }

    /// Total events ever recorded (≥ the ring's current length).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// The newest retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// Every retained event, oldest first.
    pub fn all(&self) -> Vec<TraceEvent> {
        let ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().cloned().collect()
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_monotonic_and_ring_bounded() {
        let j = EventJournal::new(4);
        for i in 0..10 {
            j.record(TraceDetail::BatchPumped {
                node: i,
                port: 0,
                tuples: 1,
            });
        }
        let events = j.all();
        assert_eq!(events.len(), 4, "ring keeps the newest 4");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(j.recorded(), 10);
    }

    #[test]
    fn disabled_subsystem_records_nothing() {
        let j = EventJournal::new(8);
        j.set_enabled(Subsystem::Lease, false);
        assert!(j.record(TraceDetail::LeaseParked { session: 1 }).is_none());
        assert!(j
            .record(TraceDetail::GapEmitted {
                subscriber: 2,
                missed: 3
            })
            .is_some());
        assert_eq!(j.all().len(), 1);
        j.set_enabled(Subsystem::Lease, true);
        assert!(j.record(TraceDetail::LeaseParked { session: 1 }).is_some());
    }

    #[test]
    fn details_map_to_subsystems() {
        assert_eq!(
            TraceDetail::ShardRouted {
                stage: 0,
                shard: 1,
                tuples: 2
            }
            .subsystem(),
            Subsystem::Exchange
        );
        assert_eq!(
            TraceDetail::WindowSealed {
                stage: 0,
                watermark: 1,
                released: 2
            }
            .subsystem(),
            Subsystem::Window
        );
    }

    #[test]
    fn recent_returns_newest_in_order() {
        let j = EventJournal::new(16);
        for i in 0..6 {
            j.record(TraceDetail::ExchangeForwarded {
                stage: i,
                tuples: 1,
            });
        }
        let last2 = j.recent(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].seq, 4);
        assert_eq!(last2[1].seq, 5);
    }
}
