//! Scalar metrics: counters, gauges, fixed-bucket histograms.
//!
//! All three are plain atomics under an `Arc`, so a handle is `Clone +
//! Send + Sync` and costs one pointer to hold. Updates use `Relaxed`
//! ordering: metrics are statistical observations, not synchronization
//! edges, and the reader only needs eventual visibility (any stronger
//! ordering the caller needs comes from its own synchronization).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Do two handles share the same cell?
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is currently lower (a high-water
    /// mark).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Do two handles share the same cell?
    pub fn same_cell(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A fixed-bucket histogram: cumulative-style buckets with explicit
/// upper bounds, plus a running sum and count. One atomic add on the
/// matching bucket per record — no allocation, no lock.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    /// Inclusive upper bounds, ascending; values above the last bound
    /// land in the implicit `+Inf` bucket.
    bounds: Vec<u64>,
    /// One cell per bound, plus the `+Inf` overflow cell at the end.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, count_in_bucket)` per finite bucket; the overflow
    /// count is everything beyond the last bound.
    pub buckets: Vec<(u64, u64)>,
    pub overflow: u64,
    pub sum: u64,
    pub count: u64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (must be
    /// non-empty and strictly ascending).
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistInner {
                bounds,
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// The default latency layout: powers of two from 512 ns to ~17 s.
    pub fn latency_ns() -> Histogram {
        Histogram::with_bounds((9..=34).map(|e| 1u64 << e).collect())
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.inner;
        // partition_point = first bound >= value (bounds are tiny, this
        // is a handful of compares).
        let idx = inner.bounds.partition_point(|&b| b < value);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        let buckets = inner
            .bounds
            .iter()
            .zip(&inner.buckets)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        HistogramSnapshot {
            buckets,
            overflow: inner.buckets[inner.bounds.len()].load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            count: inner.count.load(Ordering::Relaxed),
        }
    }

    /// Do two handles share the same cells?
    pub fn same_cell(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.same_cell(&c2));
        assert!(!c.same_cell(&Counter::new()));
    }

    #[test]
    fn gauge_set_add_sub_max() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.fetch_max(7);
        assert_eq!(g.get(), 12, "fetch_max never lowers");
        g.fetch_max(40);
        assert_eq!(g.get(), 40);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(10, 2), (100, 2), (1000, 0)]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn latency_layout_covers_wide_range() {
        let h = Histogram::latency_ns();
        h.record(0);
        h.record(1_000_000);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.overflow, 1);
    }
}
