//! The metrics registry: names to handles, snapshots, text exposition.
//!
//! A metric is identified by a *family* (e.g.
//! `engine_operator_tuples_in_total`) plus a label set (e.g.
//! `op="select", node="0"`). Registration hands back a cheap cloneable
//! handle; the hot path only ever touches the handle's atomics — the
//! registry lock guards registration and snapshotting, which happen at
//! setup time and on scrape.
//!
//! Handles created elsewhere (e.g. a session that instruments itself
//! before any server exists) can be *adopted* under a name with the
//! `adopt_*` methods, so one set of atomics serves both the local
//! accessor API and the registry's wire/text surface.

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::sketch::{QuantileSketch, SketchSnapshot};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Sketch(QuantileSketch),
    /// A read-time merge of several live sketches
    /// ([`QuantileSketch::merged`]): one summary series over e.g. every
    /// stage's lag sketch, with no write-path coordination.
    Merged(Vec<QuantileSketch>),
}

#[derive(Debug, Clone)]
struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A registry handle; `Clone` shares the underlying table.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
    /// Per-family `# HELP` text for the exposition.
    help: Arc<Mutex<Vec<(String, String)>>>,
}

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
    Sketch(SketchSnapshot),
}

/// One named metric in a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub family: String,
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn find_or_insert<T: Clone>(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        extract: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (T, Metric),
    ) -> T {
        debug_assert!(valid_family(family), "invalid metric family {family:?}");
        let mut entries = self.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.family == family && label_eq(&e.labels, labels))
        {
            if let Some(t) = extract(&e.metric) {
                return t;
            }
            panic!("metric {family:?} re-registered with a different kind");
        }
        let (handle, metric) = make();
        entries.push(Entry {
            family: family.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric,
        });
        handle
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, family: &str) -> Counter {
        self.counter_with(family, &[])
    }

    /// Get or register a labeled counter.
    pub fn counter_with(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, family: &str) -> Gauge {
        self.gauge_with(family, &[])
    }

    /// Get or register a labeled gauge.
    pub fn gauge_with(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Get or register a labeled histogram (default latency layout).
    pub fn histogram_with(&self, family: &str, labels: &[(&str, &str)]) -> Histogram {
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::latency_ns();
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Get or register a labeled quantile sketch.
    pub fn sketch_with(&self, family: &str, labels: &[(&str, &str)]) -> QuantileSketch {
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Sketch(s) => Some(s.clone()),
                _ => None,
            },
            || {
                let s = QuantileSketch::new();
                (s.clone(), Metric::Sketch(s))
            },
        )
    }

    /// Register an existing counter handle under a name (idempotent
    /// when the same cell is already registered under that name).
    pub fn adopt_counter(&self, family: &str, labels: &[(&str, &str)], handle: &Counter) {
        let h = handle.clone();
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Counter(c) if c.same_cell(handle) => Some(()),
                _ => None,
            },
            move || ((), Metric::Counter(h)),
        );
    }

    /// Register an existing gauge handle under a name.
    pub fn adopt_gauge(&self, family: &str, labels: &[(&str, &str)], handle: &Gauge) {
        let h = handle.clone();
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Gauge(g) if g.same_cell(handle) => Some(()),
                _ => None,
            },
            move || ((), Metric::Gauge(h)),
        );
    }

    /// Register an existing sketch handle under a name.
    pub fn adopt_sketch(&self, family: &str, labels: &[(&str, &str)], handle: &QuantileSketch) {
        let h = handle.clone();
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Sketch(s) if s.same_cell(handle) => Some(()),
                _ => None,
            },
            move || ((), Metric::Sketch(h)),
        );
    }

    /// Register an existing histogram handle under a name.
    pub fn adopt_histogram(&self, family: &str, labels: &[(&str, &str)], handle: &Histogram) {
        let h = handle.clone();
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Histogram(x) if x.same_cell(handle) => Some(()),
                _ => None,
            },
            move || ((), Metric::Histogram(h)),
        );
    }

    /// Register a read-time merged view over several live sketches
    /// (e.g. every stage's watermark-lag sketch as one cross-stage
    /// summary). Snapshots fold the parts with
    /// [`QuantileSketch::merged`]; the parts keep recording
    /// independently. Idempotent for the same cells in the same order.
    pub fn adopt_merged_sketch(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        parts: &[QuantileSketch],
    ) {
        assert!(!parts.is_empty(), "merged sketch needs at least one part");
        let owned: Vec<QuantileSketch> = parts.to_vec();
        self.find_or_insert(
            family,
            labels,
            |m| match m {
                Metric::Merged(have)
                    if have.len() == parts.len()
                        && have.iter().zip(parts).all(|(a, b)| a.same_cell(b)) =>
                {
                    Some(())
                }
                _ => None,
            },
            move || ((), Metric::Merged(owned)),
        );
    }

    /// Attach `# HELP` text to a family for the text exposition.
    /// Families without help render their own name as the help line.
    pub fn set_help(&self, family: &str, help: &str) {
        let mut table = self.help.lock().unwrap_or_else(|p| p.into_inner());
        match table.iter_mut().find(|(f, _)| f == family) {
            Some((_, h)) => *h = help.to_string(),
            None => table.push((family.to_string(), help.to_string())),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// family then labels (stable across calls, friendly to diffing
    /// and to the wire encoding).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out: Vec<MetricSnapshot> = self
            .lock()
            .iter()
            .map(|e| MetricSnapshot {
                family: e.family.clone(),
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Metric::Sketch(s) => MetricValue::Sketch(s.snapshot()),
                    Metric::Merged(parts) => {
                        let mut it = parts.iter();
                        let first = it.next().expect("merged sketch non-empty").clone();
                        let merged = it.fold(first, |acc, part| QuantileSketch::merged(&acc, part));
                        MetricValue::Sketch(merged.snapshot())
                    }
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.family, &a.labels).cmp(&(&b.family, &b.labels)));
        out
    }

    /// Prometheus-style text exposition of the whole registry:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`, sketches as
    /// summary `{quantile=...}` series plus `_count`. Sketch extremes
    /// ride along as `_min`/`_max` gauges. Conforms to the exposition
    /// format: `# HELP` then `# TYPE` once per family (help text set
    /// via [`MetricsRegistry::set_help`], defaulting to the family
    /// name), label values escaped, and non-finite floats rendered as
    /// `+Inf`/`-Inf`/`NaN`.
    pub fn render_text(&self) -> String {
        let help_table = self.help.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for m in self.snapshot() {
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
                MetricValue::Sketch(_) => "summary",
            };
            let family = m.family.clone();
            if last_family.as_ref() != Some(&family) {
                let help = help_table
                    .iter()
                    .find(|(f, _)| *f == family)
                    .map(|(_, h)| h.as_str())
                    .unwrap_or(family.as_str());
                out.push_str(&format!("# HELP {family} {}\n", escape_help(help)));
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = Some(family.clone());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.family, label_str(&m.labels, &[])));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.family, label_str(&m.labels, &[])));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (bound, count) in &h.buckets {
                        cum += count;
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            m.family,
                            label_str(&m.labels, &[("le", &bound.to_string())])
                        ));
                    }
                    cum += h.overflow;
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        m.family,
                        label_str(&m.labels, &[("le", "+Inf")])
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.family,
                        label_str(&m.labels, &[]),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.family,
                        label_str(&m.labels, &[]),
                        h.count
                    ));
                }
                MetricValue::Sketch(s) => {
                    if s.count > 0 {
                        for (q, v) in [(0.5, s.p50), (0.9, s.p90), (0.95, s.p95), (0.99, s.p99)] {
                            out.push_str(&format!(
                                "{}{} {}\n",
                                m.family,
                                label_str(&m.labels, &[("quantile", &q.to_string())]),
                                fmt_f64(v)
                            ));
                        }
                        out.push_str(&format!(
                            "{}_min{} {}\n",
                            m.family,
                            label_str(&m.labels, &[]),
                            fmt_f64(s.min)
                        ));
                        out.push_str(&format!(
                            "{}_max{} {}\n",
                            m.family,
                            label_str(&m.labels, &[]),
                            fmt_f64(s.max)
                        ));
                    }
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.family,
                        label_str(&m.labels, &[]),
                        s.count
                    ));
                }
            }
        }
        out
    }
}

fn valid_family(family: &str) -> bool {
    !family.is_empty()
        && family
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && family
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Render a label set (base labels plus extras) as
/// `{k="v",...}`, escaping `\`, `"` and newlines; empty when there are
/// no labels at all.
fn label_str(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::with_capacity(labels.len() + extra.len());
    for (k, v) in labels {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `# HELP` escaping per the exposition format: backslash and newline
/// only (quotes are legal in help text).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// A float sample value in exposition syntax: Rust's `{}` renders
/// `inf`/`-inf`/`NaN`, Prometheus requires `+Inf`/`-Inf`/`NaN`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_cell() {
        let r = MetricsRegistry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(a.same_cell(&b));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_distinguish_metrics() {
        let r = MetricsRegistry::new();
        let a = r.counter_with("routed_total", &[("stage", "0")]);
        let b = r.counter_with("routed_total", &[("stage", "1")]);
        a.add(3);
        b.add(5);
        assert_eq!(r.len(), 2);
        let snap = r.snapshot();
        assert_eq!(snap[0].value, MetricValue::Counter(3));
        assert_eq!(snap[1].value, MetricValue::Counter(5));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("thing");
        r.gauge("thing");
    }

    #[test]
    fn adopted_handle_shows_up_in_snapshot() {
        let r = MetricsRegistry::new();
        let c = Counter::new();
        c.add(7);
        r.adopt_counter("external_total", &[("id", "x")], &c);
        // Idempotent for the same cell.
        r.adopt_counter("external_total", &[("id", "x")], &c);
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].value, MetricValue::Counter(7));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("zebra_total");
        r.gauge("alpha_depth");
        let snap = r.snapshot();
        assert_eq!(snap[0].family, "alpha_depth");
        assert_eq!(snap[1].family, "zebra_total");
        assert_eq!(r.snapshot(), snap);
    }

    #[test]
    fn render_text_formats_each_kind() {
        let r = MetricsRegistry::new();
        r.counter_with("pumped_total", &[("stage", "0")]).add(2);
        r.gauge("depth").set(-3);
        let h = r.histogram_with("lat_ns", &[]);
        h.record(100);
        h.record(u64::MAX);
        let s = r.sketch_with("lag", &[("stage", "0")]);
        for i in 0..100 {
            s.record(i as f64);
        }
        let text = r.render_text();
        assert!(text.contains("# TYPE pumped_total counter"));
        assert!(text.contains("pumped_total{stage=\"0\"} 2"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -3"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_count 2"));
        assert!(text.contains("# TYPE lag summary"));
        assert!(text.contains("lag{stage=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("lag_count{stage=\"0\"} 100"));
    }

    #[test]
    fn empty_sketch_renders_count_only() {
        let r = MetricsRegistry::new();
        r.sketch_with("idle_lag", &[]);
        let text = r.render_text();
        assert!(text.contains("idle_lag_count 0"));
        assert!(!text.contains("quantile"));
    }

    #[test]
    fn label_escaping() {
        let r = MetricsRegistry::new();
        r.counter_with("c_total", &[("msg", "a\"b\\c\nd")]).inc();
        let text = r.render_text();
        assert!(text.contains(r#"msg="a\"b\\c\nd""#));
    }

    /// The exposition-format conformance suite: HELP+TYPE per family,
    /// escaped help and label values, non-finite floats in Prometheus
    /// spelling.
    #[test]
    fn exposition_conformance() {
        let r = MetricsRegistry::new();
        r.counter_with("jobs_total", &[("q", "a")]).add(1);
        r.counter_with("jobs_total", &[("q", "b")]).add(2);
        r.set_help("jobs_total", "jobs processed\nby queue \\ path");
        r.gauge("depth").set(5);
        let s = r.sketch_with("lag", &[]);
        for i in 0..100 {
            s.record(i as f64);
        }
        let text = r.render_text();

        // HELP precedes TYPE, once per family even with several label
        // sets, with backslash/newline escaped in the help text.
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert_eq!(
            text.matches(r"# HELP jobs_total jobs processed\nby queue \\ path")
                .count(),
            1
        );
        let help_at = text.find("# HELP jobs_total").unwrap();
        let type_at = text.find("# TYPE jobs_total").unwrap();
        assert!(help_at < type_at, "HELP must precede TYPE");
        // Families without set_help fall back to the family name.
        assert!(text.contains("# HELP depth depth"));
        assert!(text.contains("# TYPE depth gauge"));
        // Sketch extremes render, and Rust's `inf` spelling never
        // leaks into sample values (non-finite spelling is pinned by
        // `fmt_f64_spells_non_finite_values`).
        assert!(text.contains("lag_max "));
        assert!(text.contains("lag_min "));
        assert!(
            !text.contains(" inf\n"),
            "Rust float formatting leaked:\n{text}"
        );
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed sample line: {line}");
        }
    }

    #[test]
    fn fmt_f64_spells_non_finite_values() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(-0.0), "-0");
    }

    #[test]
    fn merged_sketch_folds_parts_at_snapshot_time() {
        let r = MetricsRegistry::new();
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        for i in 0..500 {
            a.record(i as f64); // 0..500
            b.record(1_000.0 + i as f64); // 1000..1500
        }
        r.adopt_merged_sketch("lag_merged", &[], &[a.clone(), b.clone()]);
        // Idempotent for the same cells.
        r.adopt_merged_sketch("lag_merged", &[], &[a.clone(), b.clone()]);
        assert_eq!(r.len(), 1);
        let snap = r.snapshot();
        let MetricValue::Sketch(s) = &snap[0].value else {
            panic!("merged view snapshots as a sketch");
        };
        assert_eq!(s.count, 1_000);
        assert!(s.min < 10.0 && s.max > 1_400.0);
        assert!(
            (400.0..1_100.0).contains(&s.p50),
            "merged p50 between the parts, was {}",
            s.p50
        );
        // Live: the parts keep recording, the view keeps up.
        for _ in 0..500 {
            b.record(2_000.0);
        }
        let MetricValue::Sketch(s2) = &r.snapshot()[0].value else {
            panic!("still a sketch");
        };
        assert_eq!(s2.count, 1_500);
        // Renders as a summary family.
        assert!(r.render_text().contains("# TYPE lag_merged summary"));
    }
}
