//! Umbrella crate re-exporting the uncertain-streams workspace.
pub use radar_sim as radar;
pub use rfid_sim as rfid;
pub use ustream_core as core;
pub use ustream_inference as inference;
pub use ustream_prob as prob;
pub use ustream_runtime as runtime;
pub use ustream_server as server;
pub use ustream_telemetry as telemetry;
pub use ustream_ts as ts;
