//! Offline stand-in for `crossbeam`, exposing the `channel` module the
//! threaded executor uses. Backed by `std::sync::mpsc::sync_channel`,
//! which gives the same semantics the executor relies on: bounded
//! capacity with blocking `send` (backpressure), cloneable senders, and
//! `recv` returning `Err` once every sender is dropped.

pub mod channel {
    use std::sync::mpsc;

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// A bounded channel with blocking send once `cap` messages queue up.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn fan_in_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || (0..10).for_each(|i| tx.send(i).unwrap()));
        let h2 = std::thread::spawn(move || (10..20).for_each(|i| tx2.send(i).unwrap()));
        let mut got: Vec<u32> = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h1.join().unwrap();
        h2.join().unwrap();
        got.sort();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
