//! Offline stand-in for `crossbeam`, exposing the `channel` module the
//! executors use: a **bounded MPMC ring buffer** with blocking `send`
//! (backpressure), cloneable senders *and* receivers, and disconnect
//! semantics (`recv` errors once every sender is gone, `send` errors once
//! every receiver is gone).
//!
//! Earlier revisions wrapped `std::sync::mpsc::sync_channel`, which is
//! single-consumer: a worker *pool* draining one queue was impossible and
//! every hand-off went through mpsc's internal node allocation. This
//! version stores messages in a fixed-capacity ring (one allocation per
//! channel, zero per message) guarded by a mutex with two condvars —
//! not lock-free like the real crate, but the same API and semantics, and
//! messages are batches here so the lock is amortized batch-size-fold.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// `send` failed because every receiver was dropped; returns the
    /// unsent value.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// `recv` failed because the channel is empty and every sender was
    /// dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// `try_recv` outcome when no message was dequeued.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain connected.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// `try_send` outcome when the message was not enqueued; returns the
    /// unsent value either way (mirroring the real crate).
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// Ring currently full, but receivers remain connected.
        Full(T),
        /// Every receiver dropped.
        Disconnected(T),
    }

    /// Ring state under the mutex. The buffer is a `VecDeque` whose
    /// backing allocation is made once at channel creation (`with_capacity`)
    /// and never grows past `cap`, so it behaves as a fixed ring.
    struct Ring<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        ring: Mutex<Ring<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    /// Producer half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Consumer half; cloneable (MPMC) — a pool of workers may drain one
    /// channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.ring.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.ring.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut ring = self.shared.ring.lock().unwrap();
            ring.senders -= 1;
            if ring.senders == 0 {
                drop(ring);
                // Blocked receivers must observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut ring = self.shared.ring.lock().unwrap();
            ring.receivers -= 1;
            if ring.receivers == 0 {
                drop(ring);
                // Blocked senders must observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while the ring is full. Errors (and
        /// hands the value back) once every receiver is gone — including
        /// when a blocked send is woken by the last receiver dropping.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut ring = self.shared.ring.lock().unwrap();
            loop {
                if ring.receivers == 0 {
                    return Err(SendError(value));
                }
                if ring.buf.len() < ring.cap {
                    ring.buf.push_back(value);
                    drop(ring);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                ring = self.shared.not_full.wait(ring).unwrap();
            }
        }

        /// Non-blocking enqueue: fails immediately with the value when
        /// the ring is full or every receiver is gone. The escape hatch
        /// for producers that must not park forever behind a stalled
        /// consumer (e.g. a result broadcaster that wants to drop the
        /// slow subscriber instead).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut ring = self.shared.ring.lock().unwrap();
            if ring.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if ring.buf.len() < ring.cap {
                ring.buf.push_back(value);
                drop(ring);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            Err(TrySendError::Full(value))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the oldest message, blocking while the ring is empty.
        /// Errors once the ring is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut ring = self.shared.ring.lock().unwrap();
            loop {
                if let Some(v) = ring.buf.pop_front() {
                    drop(ring);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if ring.senders == 0 {
                    return Err(RecvError);
                }
                ring = self.shared.not_empty.wait(ring).unwrap();
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut ring = self.shared.ring.lock().unwrap();
            if let Some(v) = ring.buf.pop_front() {
                drop(ring);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if ring.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// A bounded MPMC channel: blocking `send` once `cap` messages queue
    /// up. `cap` must be positive (a rendezvous channel would deadlock a
    /// single-threaded driver).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        let shared = Arc::new(Shared {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError};

    #[test]
    fn fan_in_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || (0..10).for_each(|i| tx.send(i).unwrap()));
        let h2 = std::thread::spawn(move || (10..20).for_each(|i| tx2.send(i).unwrap()));
        let mut got: Vec<u32> = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h1.join().unwrap();
        h2.join().unwrap();
        got.sort();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_multiple_consumers_partition_the_stream() {
        let (tx, rx) = bounded::<u32>(8);
        let rx2 = rx.clone();
        let consume = |rx: super::channel::Receiver<u32>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        };
        let c1 = consume(rx);
        let c2 = consume(rx2);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = c1.join().unwrap();
        all.extend(c2.join().unwrap());
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_send_unblocks_when_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).unwrap();
        let h = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx); // full ring, sender parked: must wake and error
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn try_send_distinguishes_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let (tx, rx) = bounded::<u32>(2);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = sent.clone();
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Producer must have parked at the ring bound, not run ahead.
        assert!(sent.load(Ordering::SeqCst) <= 3);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
