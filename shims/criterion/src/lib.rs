//! Offline stand-in for `criterion`: a tiny wall-clock bench harness
//! with the same source-level API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `iter` / `iter_batched`, `BenchmarkId`, `BatchSize`). Timings are
//! median-of-samples over a short warmup + measurement window and are
//! printed as `bench-name ... median N ns/iter`; there is no statistical
//! regression machinery, which is fine for the repo's purposes until the
//! real criterion can be vendored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim times the routine only,
/// so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `group/function/parameter` bench identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to bench closures; `iter`/`iter_batched` record samples.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement: Duration,
}

impl Bencher {
    fn new(target_samples: usize, measurement: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
            measurement,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.measurement;
        // One untimed warmup call.
        black_box(routine());
        while self.samples.len() < self.target_samples && Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement;
        black_box(routine(setup()));
        while self.samples.len() < self.target_samples && Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort();
        ns[ns.len() / 2]
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one(&id.into_id(), self.sample_size, self.measurement, f);
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, self.measurement, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Accepted for API compatibility; the shim does not report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, measurement: Duration, mut f: F) {
    let mut b = Bencher::new(samples, measurement);
    f(&mut b);
    println!(
        "bench: {name:<50} median {:>12} ns/iter ({} samples)",
        b.median_ns(),
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sum_bench);
        benches();
    }
}
