//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`rngs::StdRng`]
//! (implemented as xoshiro256++ seeded via SplitMix64). The statistical
//! quality is more than sufficient for simulation and testing; the
//! stream of any given seed is stable across runs, which the property
//! tests and benchmark workloads rely on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural unit range), mirroring `rand::distributions::Standard`.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            mean += x;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let k = rng.gen_range(3..10);
            assert!((3..10).contains(&k));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
