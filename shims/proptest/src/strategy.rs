//! Value-generation strategies: ranges, tuples, `prop_map`, unions,
//! `Just`, and `collection::vec`. Generation is a plain function of the
//! [`TestRng`]; there is no shrinking tree.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for producing values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.gen_value(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Type-erased strategy, the element type of [`Union`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// `prop_oneof!` support: picks one arm uniformly per case.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.next_usize_below(self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// `proptest::collection::vec`: a vector whose length is drawn from
/// `sizes` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty vec size range");
    VecStrategy { element, sizes }
}

pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.sizes.end - self.sizes.start;
        let len = self.sizes.start + rng.next_usize_below(span.max(1));
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
