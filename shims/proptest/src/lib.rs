//! Offline stand-in for `proptest`, implementing the subset the
//! workspace's property suites use: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), range / tuple / mapped /
//! union strategies, `proptest::collection::vec`, [`Just`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - Cases are generated from a **fixed seed schedule** (deterministic
//!   across runs and platforms) instead of OS entropy, so a failure
//!   always reproduces.
//! - No shrinking: a failing case reports its inputs (via `Debug`
//!   formatting of the generated values where available in the message)
//!   and the case index, but is not minimized.

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) samples before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw fresh inputs, don't count the case.
    Reject(String),
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn next_usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Drives one `proptest!`-generated test: runs `config.cases` accepted
/// cases, drawing each case's inputs from a per-case deterministic seed.
pub fn run_proptest<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut draw = 0u64;
    while accepted < config.cases {
        // Fixed schedule: seed depends only on the test name and draw
        // index, so every run (and every failure) is reproducible.
        let seed =
            fnv1a(test_name.as_bytes()).wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        draw += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many prop_assume! rejects \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case #{accepted} (draw {}, seed {seed:#x}):\n{msg}",
                    draw - 1
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The `proptest! { ... }` item macro: expands each `fn name(pat in
/// strategy, ...) { body }` into a plain `#[test]` fn driven by
/// [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, stringify!($name), |__pt_rng| {
                    let ($($pat,)+) = ($(
                        $crate::Strategy::gen_value(&($strat), __pt_rng),
                    )+);
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn mapped_and_union(e in small_even(), pick in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for &x in &v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10) {
            prop_assume!(a > 2);
            prop_assert!(a > 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_panics() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
