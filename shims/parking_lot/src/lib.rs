//! Offline stand-in for `parking_lot`: same non-poisoning `lock()` /
//! `read()` / `write()` surface, delegating to `std::sync` primitives.
//! A poisoned std lock (a panic while held) is transparently recovered,
//! matching parking_lot's "no poisoning" semantics.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
