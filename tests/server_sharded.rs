//! Serving-path tests for the sharded session and the watermark
//! heartbeat: the engine thread routes into a `ShardedSession` worker
//! pool ([`ServedQuery::sharded`]) and its streamed results must stay
//! exactly equal to `run_batched` over the merged input; an
//! idle-but-alive publisher must no longer stall the k-way timestamp
//! merge once it advertises watermark heartbeats.

use std::sync::Arc;
use std::time::Duration;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::join::{JoinCondition, WindowJoin};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::{NodeId, QueryGraph};
use uncertain_streams::core::schema::{DataType, Field, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::{Client, ClientError, ErrorCode, ServedQuery, Server, ServerError};

const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("tag", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

/// Unique-timestamp input stream (ts = index), so the merged arrival
/// order at the server is fully determined and matches the feed
/// `run_batched` sorts out of the same tuples.
fn inputs(n: usize) -> Vec<Tuple> {
    let s = schema();
    (0..n)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.25,
                    ))),
                ],
                i as u64,
            )
        })
        .collect()
}

/// The Q1-style keyed-aggregation graph the loopback suite serves —
/// here built by a *factory* so the sharded session can replicate it
/// per shard.
fn q1_graph() -> (QueryGraph, NodeId) {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let project = Project::new(vec![
        Derivation::Certain {
            out: Field::new("weight", DataType::Float),
            f: Box::new(|t: &Tuple| Value::Float(t.int("tag").unwrap() as f64 * 2.5)),
        },
        Derivation::Linear {
            input: "x".into(),
            a: 0.5,
            b: 1.0,
            out: "y".into(),
        },
    ]);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(100),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    );
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

/// Exact tuple fingerprint: timestamp, existence bits, lineage ids, and
/// the full `Debug` rendering of every value.
fn fingerprint(t: &Tuple) -> String {
    format!(
        "ts={} ex={:016x} lin={:?} vals={:?}",
        t.ts,
        t.existence.to_bits(),
        t.lineage.ids(),
        t.values()
    )
}

/// The headline serving claim: with the engine thread routing into a
/// 4-shard worker-pool session, three concurrent publishers' interleaved
/// streams still produce a subscriber stream *exactly* equal — values,
/// timestamps, existence bits, lineage, and stream order — to
/// `run_batched` over the merged input. Watermark-gated release plus the
/// canonical per-interval order make the parallel stream reproducible.
#[test]
fn sharded_serving_matches_run_batched_exactly() {
    let n = 1500;
    let all_inputs = inputs(n);

    let (mut ref_graph, sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all_inputs.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert!(!expected.is_empty());

    let served = ServedQuery::sharded(|| q1_graph().0, 4);
    let handle = Server::serve("127.0.0.1:0", served).unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publishers: Vec<Client> = (0..3).map(|_| Client::publisher(addr).unwrap()).collect();

    let threads: Vec<_> = publishers
        .drain(..)
        .enumerate()
        .map(|(p, mut client)| {
            let slice: Vec<Tuple> = all_inputs.iter().skip(p).step_by(3).cloned().collect();
            std::thread::spawn(move || {
                for chunk in slice.chunks(37) {
                    let accepted = client.publish("in", 0, chunk).unwrap();
                    assert_eq!(accepted, chunk.len());
                }
                client.finish().unwrap();
            })
        })
        .collect();

    let collected = subscriber.collect_until_eos().unwrap();
    for t in threads {
        t.join().unwrap();
    }
    assert!(handle.is_finished());

    assert_eq!(collected.len(), 1, "one sink");
    let (sink_idx, received) = &collected[0];
    assert_eq!(*sink_idx, sink.index());
    assert_eq!(received.len(), expected.len());
    for (got, want) in received.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean sharded run: {errors:?}");
}

/// A staged plan (aggregate → keyed equi-join) behind the serving path:
/// the engine routes stage 0, the exchange re-shuffles window rows by
/// join key, and the subscriber's total result set equals `run_batched`
/// exactly (compared sorted: a join's within-probe emission order is
/// not part of the canonical contract).
#[test]
fn staged_query_serves_sharded_and_matches_run_batched() {
    let mk_graph = || {
        let mut g = QueryGraph::new();
        let agg = g.add(Box::new(WindowedAggregate::new(
            WindowKind::Tumbling(100),
            |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
            vec![AggSpec {
                field: "x".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::ExactParametric,
            }],
        )));
        let join = g.add(Box::new(WindowJoin::new(
            1_000_000,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("group").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("gname").ok()?)),
            },
            0.0,
        )));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(agg, join, 0).unwrap();
        g.connect(join, sink, 0).unwrap();
        g.source("readings", agg);
        g.source("refs", join);
        g.sink(sink);
        g
    };
    let sink = NodeId::from_index(2);

    let readings = inputs(800);
    let ref_schema = Schema::builder()
        .field("rid", DataType::Int)
        .field("gname", DataType::Str)
        .build();
    let refs: Vec<Tuple> = (0..30u64)
        .map(|j| {
            Tuple::new(
                ref_schema.clone(),
                vec![Value::Int(j as i64), Value::from(format!("Int({})", j % 4))],
                j * 26,
            )
        })
        .collect();

    let mut ref_graph = mk_graph();
    let expected = ref_graph
        .run_batched(
            vec![
                ("readings".into(), 0, readings.clone()),
                ("refs".into(), 1, refs.clone()),
            ],
            256,
        )
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert!(!expected.is_empty(), "windows joined against references");

    let handle = Server::serve("127.0.0.1:0", ServedQuery::sharded(mk_graph, 4)).unwrap();
    let addr = handle.addr();
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // One publisher per source, each stream ts-ordered.
    let mut pub_readings = Client::publisher(addr).unwrap();
    pub_readings.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut pub_refs = Client::publisher(addr).unwrap();
    pub_refs.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let t1 = std::thread::spawn(move || {
        for chunk in readings.chunks(64) {
            pub_readings.publish("readings", 0, chunk).unwrap();
        }
        pub_readings.finish().unwrap();
    });
    let t2 = std::thread::spawn(move || {
        for chunk in refs.chunks(7) {
            pub_refs.publish("refs", 1, chunk).unwrap();
        }
        pub_refs.finish().unwrap();
    });

    let collected = subscriber.collect_until_eos().unwrap();
    t1.join().unwrap();
    t2.join().unwrap();

    assert_eq!(collected.len(), 1);
    let mut got: Vec<String> = collected[0].1.iter().map(fingerprint).collect();
    let mut want: Vec<String> = expected.iter().map(fingerprint).collect();
    got.sort();
    want.sort();
    assert_eq!(got, want, "staged serving must reproduce run_batched");

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean staged run: {errors:?}");
}

/// Regression: an idle-but-alive publisher used to stall the merge
/// forever (its watermark never advanced, so no other publisher's
/// tuples could release). Heartbeats advance it without data.
#[test]
fn silent_publisher_heartbeat_unblocks_the_merge() {
    let (graph, sink) = q1_graph();
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(graph)).unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    // Silent publisher joins first (so EOS cannot happen early), then
    // the active one publishes everything and finishes.
    let mut silent = Client::publisher(addr).unwrap();
    silent.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut active = Client::publisher(addr).unwrap();
    active.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let all = inputs(1000);
    for chunk in all.chunks(100) {
        active.publish("in", 0, chunk).unwrap();
    }
    active.finish().unwrap();

    // Without a heartbeat the merge is gated on the silent publisher's
    // watermark (0): nothing may stream yet.
    subscriber
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    match subscriber.next_event() {
        Err(ClientError::Wire(_)) => {} // read timed out: nothing released
        other => panic!("merge must stall before the heartbeat, got {other:?}"),
    }

    let (mut ref_graph, ref_sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&ref_sink)
        .unwrap();

    // The silent publisher advertises its clock: the collective
    // watermark now seals every published window (heartbeat ts is past
    // all of them), so the *entire* result set streams while it stays
    // connected and unfinished — the merge gate opens AND the engine's
    // event-time clock advances (windows close on punctuation, not
    // only on data).
    silent.heartbeat(10_000).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut received: Vec<Tuple> = Vec::new();
    while received.len() < expected.len() {
        match subscriber.next_event().unwrap() {
            uncertain_streams::server::Event::Results { sink: s, tuples } => {
                assert_eq!(s, sink.index());
                received.extend(tuples);
            }
            other => panic!("expected results after heartbeat, got {other:?}"),
        }
    }
    assert!(
        !handle.is_finished(),
        "all results flowed while the silent publisher was still open"
    );

    // Now the silent publisher finishes; EOS follows (nothing is left
    // to flush — the watermark already closed every window).
    silent.finish().unwrap();
    for (s, tuples) in subscriber.collect_until_eos().unwrap() {
        assert_eq!(s, sink.index());
        received.extend(tuples);
    }
    assert_eq!(received.len(), expected.len());
    for (got, want) in received.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }
    handle.shutdown();
}

/// Regression for the auto-heartbeat timer: a publisher that never
/// publishes and never calls `heartbeat` itself no longer delays
/// results — it advances its event-time clock with the non-blocking
/// `advance_watermark` and the background timer advertises it to the
/// server. (Before the timer existed, forgetting the explicit
/// `heartbeat` call stalled every subscriber's windows forever.)
#[test]
fn silent_publisher_auto_heartbeat_no_longer_delays_results() {
    let (graph, sink) = q1_graph();
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(graph)).unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut silent = Client::publisher(addr).unwrap();
    silent.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut active = Client::publisher(addr).unwrap();
    active.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let all = inputs(1000);
    for chunk in all.chunks(100) {
        active.publish("in", 0, chunk).unwrap();
    }
    active.finish().unwrap();

    let (mut ref_graph, ref_sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&ref_sink)
        .unwrap();

    // The application keeps its clock current and goes on with its
    // life: no explicit heartbeat call, no blocking round-trip. The
    // client's background timer owns the protocol traffic.
    silent.advance_watermark(10_000);

    let mut received: Vec<Tuple> = Vec::new();
    while received.len() < expected.len() {
        match subscriber.next_event().unwrap() {
            uncertain_streams::server::Event::Results { sink: s, tuples } => {
                assert_eq!(s, sink.index());
                received.extend(tuples);
            }
            other => panic!("expected results after auto-heartbeat, got {other:?}"),
        }
    }
    assert!(
        !handle.is_finished(),
        "all results flowed while the silent publisher was still open"
    );
    for (got, want) in received.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }

    // Orderly close: finishing stops the timer before the Finish frame,
    // so no heartbeat can trail it. Nothing is left to flush — the
    // advertised watermark already closed every window.
    silent.finish().unwrap();
    for (s, tuples) in subscriber.collect_until_eos().unwrap() {
        assert_eq!(s, sink.index());
        assert!(tuples.is_empty(), "no residue after the watermark flush");
    }
    handle.shutdown();
}

/// Heartbeats are a publisher-stream concept: connections that never
/// published (and publishers that already finished) get typed errors.
#[test]
fn heartbeat_protocol_errors_are_typed() {
    let (graph, _) = q1_graph();
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(graph)).unwrap();

    let mut watcher = Client::subscriber(handle.addr()).unwrap();
    watcher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match watcher.heartbeat(5) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected Protocol error for non-publisher heartbeat, got {other:?}"),
    }

    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    publisher.publish("in", 0, &inputs(5)).unwrap();
    publisher.heartbeat(100).unwrap();
    publisher.finish().unwrap();
    match publisher.heartbeat(200) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected Protocol error after finish, got {other:?}"),
    }
    handle.shutdown();
}

/// A routing-key panic on remote input (tuples whose schema the keyed
/// router cannot evaluate) must poison the sharded session, not the
/// serving threads: subscribers get Eos, the error is typed.
#[test]
fn sharded_serving_contains_routing_panics() {
    let handle = Server::serve("127.0.0.1:0", ServedQuery::sharded(|| q1_graph().0, 4)).unwrap();
    let mut subscriber = Client::subscriber(handle.addr()).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // No "g" column: the aggregate's group-key closure (evaluated by
    // the router on the engine thread) unwraps and panics.
    let bad_schema = Schema::builder().field("x", DataType::Uncertain).build();
    let bad: Vec<Tuple> = (0..8)
        .map(|i| {
            Tuple::new(
                bad_schema.clone(),
                vec![Value::from(Updf::Parametric(Dist::gaussian(5.0, 1.0)))],
                i as u64,
            )
        })
        .collect();
    publisher.publish("in", 0, &bad).unwrap();

    let collected = subscriber.collect_until_eos().unwrap();
    assert!(collected.is_empty() || collected[0].1.is_empty());

    let mut late = Client::publisher(handle.addr()).unwrap();
    late.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match late.publish("in", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Finished),
        other => panic!("expected Finished from dead query, got {other:?}"),
    }

    let errors = handle.shutdown();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ServerError::QueryPanicked { .. })),
        "expected QueryPanicked, got {errors:?}"
    );
}
