//! End-to-end RFID pipeline: simulator → particle-filter T operator →
//! uncertain tuples → relational processing, validated against the
//! simulator's ground truth.

use uncertain_streams::core::toperator::TransformOperator;
use uncertain_streams::core::{confidence_region, ConfidenceRegion, ConversionPolicy, Updf};
use uncertain_streams::inference::{FactoredConfig, MotionModel, ObservationModel, RfidTOperator};
use uncertain_streams::rfid::{SensingModel, TraceConfig, TraceGenerator, WorldConfig};

fn setup(policy: ConversionPolicy) -> (TraceGenerator, RfidTOperator) {
    let tc = TraceConfig {
        world: WorldConfig {
            shelf_rows: 5,
            shelf_cols: 5,
            num_objects: 40,
            move_prob: 0.0,
            seed: 31,
            ..Default::default()
        },
        sensing: SensingModel::clean(),
        seed: 37,
        ..Default::default()
    };
    let gen = TraceGenerator::new(tc);
    let shelf_xy: Vec<[f64; 2]> = gen
        .world
        .shelves()
        .iter()
        .map(|s| [s.pos[0], s.pos[1]])
        .collect();
    let cfg = FactoredConfig {
        num_particles: 200,
        extent: gen.world.extent(),
        motion: MotionModel {
            diffusion: 0.05,
            move_prob: 0.0,
            shelf_xy,
            placement_jitter: 0.8,
        },
        obs: ObservationModel::new(*gen.sensing()),
        use_spatial_index: true,
        compression: None,
        negative_evidence: true,
        resample_fraction: 0.5,
        seed: 41,
    };
    let t_op = RfidTOperator::new(40, cfg, policy);
    (gen, t_op)
}

#[test]
fn location_confidence_regions_are_calibrated() {
    // After convergence, most tracked objects should fall inside their
    // own (slack-inflated) 95% confidence ellipsoid. Collect the freshest
    // tuple per object over the whole run; objects are static, so stale
    // estimates remain valid.
    let (mut gen, mut t_op) = setup(ConversionPolicy::FitGaussian);
    let mut freshest: std::collections::HashMap<i64, uncertain_streams::core::Tuple> =
        std::collections::HashMap::new();
    let mut last_truth = Vec::new();
    for _ in 0..500 {
        let scan = gen.next_scan();
        last_truth = scan.truth.object_xy.clone();
        for t in t_op.ingest(scan) {
            freshest.insert(t.int("tag_id").unwrap(), t);
        }
    }
    assert!(
        freshest.len() >= 10,
        "only {} objects ever emitted",
        freshest.len()
    );
    let mut inside = 0usize;
    let mut total = 0usize;
    for (id, tuple) in &freshest {
        let loc = tuple.updf("loc").unwrap();
        let Updf::Mv(mv) = loc else {
            panic!("expected Mv")
        };
        let truth = last_truth[*id as usize];
        let maha = mv.mahalanobis_sq(&[truth[0], truth[1]]);
        // Generous slack: particle posteriors after resampling are often
        // overconfident; the test guards against *gross* miscalibration.
        let r = mv.confidence_radius_sq(0.95);
        total += 1;
        if maha <= r * 9.0 {
            inside += 1;
        }
    }
    assert!(
        inside as f64 >= 0.5 * total as f64,
        "only {inside}/{total} truths inside (inflated) 95% regions"
    );
}

#[test]
fn confidence_region_types_follow_payload() {
    let (mut gen, mut t_op) = setup(ConversionPolicy::FitGaussian);
    for _ in 0..50 {
        let out = t_op.ingest(gen.next_scan());
        if let Some(tuple) = out.first() {
            let loc = tuple.updf("loc").unwrap();
            match confidence_region(loc, 0.9) {
                ConfidenceRegion::Ellipsoid { level, .. } => assert_eq!(level, 0.9),
                other => panic!("expected ellipsoid for Mv payload, got {other:?}"),
            }
            let lx = tuple.updf("loc_x").unwrap();
            let r = confidence_region(lx, 0.9);
            assert!(matches!(
                r,
                ConfidenceRegion::Interval { .. } | ConfidenceRegion::Union { .. }
            ));
            return;
        }
    }
    panic!("no tuples emitted in 50 scans");
}

#[test]
fn payload_sizes_shrink_with_parametric_policy() {
    let (mut gen_a, mut keep) = setup(ConversionPolicy::KeepSamples);
    let (mut gen_b, mut fit) = setup(ConversionPolicy::FitGaussian);
    let mut bytes_keep = 0usize;
    let mut bytes_fit = 0usize;
    for _ in 0..50 {
        for t in keep.ingest(gen_a.next_scan()) {
            bytes_keep += t.uncertain_payload_bytes();
        }
        for t in fit.ingest(gen_b.next_scan()) {
            bytes_fit += t.uncertain_payload_bytes();
        }
    }
    assert!(bytes_keep > 0 && bytes_fit > 0);
    // §4.3: one-to-two orders of magnitude stream-volume reduction.
    assert!(
        bytes_keep > 10 * bytes_fit,
        "keep={bytes_keep} fit={bytes_fit}"
    );
}
