//! End-to-end radar pipeline: weather → pulses → moments → detection,
//! and the §4.4 T operator feeding voxel tuples into the core engine's
//! MA-CLT aggregation path.

use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::{GroupKey, Tuple};
use uncertain_streams::radar::{
    compute_moments, detect_tornados, run_scenario, DetectorConfig, RadarNode, RadarParams,
    RadarTOperator, ScenarioConfig, VelocityUq, WeatherField,
};

fn params() -> RadarParams {
    RadarParams {
        gates: 416,
        gate_spacing: 48.0,
        ..Default::default()
    }
}

#[test]
fn averaging_tradeoff_matches_table1_shape() {
    let field = WeatherField::tornadic_default();
    let cfg = ScenarioConfig {
        params: params(),
        num_scans: 2,
        scan_period_s: 2.0,
        ..Default::default()
    };
    let fine = run_scenario(&field, 40, &cfg);
    let coarse = run_scenario(&field, 1000, &cfg);

    // The Table 1 dilemma, end to end.
    assert!(fine.reported_tornados > 0.0, "fine averaging detects");
    assert_eq!(coarse.reported_tornados, 0.0, "coarse averaging misses");
    assert!(fine.moment_mb > 10.0 * coarse.moment_mb);
    assert!(!fine.fits_deadline, "fine data blows the compute budget");
    assert!(coarse.fits_deadline, "coarse data fits the budget");
    assert!(coarse.false_negatives > fine.false_negatives);
}

#[test]
fn t_operator_tuples_flow_into_core_aggregation() {
    // Voxel velocity tuples from the radar T operator, aggregated per
    // range gate across consecutive groups with the engine's MA-CLT path
    // operating on the certain per-group means — exercising the §4.4
    // chain radar → T operator → core operators.
    let field = WeatherField::tornadic_default();
    let node = RadarNode::new(0, [0.0, 0.0], params());
    let bearing = (9_000.0f64).atan2(12_000.0);
    let pulses = node.sector_scan(&field, bearing - 0.03, bearing + 0.03, 0.0, 51);
    let mut t_op = RadarTOperator::new(params(), VelocityUq::MaClt { max_order: 3 });

    let gates: Vec<usize> = vec![310, 312, 314];
    let mut agg = WindowedAggregate::new(
        WindowKind::Count(gates.len() * 4),
        |t: &Tuple| {
            GroupKey::from_value(t.get("range").map(|_| t.get("range").unwrap()).unwrap())
                .unwrap_or(GroupKey::Unit)
        },
        vec![AggSpec {
            field: "velocity".into(),
            func: AggFunc::Avg,
            out: "v_avg".into(),
            strategy: Strategy::Clt,
        }],
    );

    let mut out = Vec::new();
    for group in pulses.chunks_exact(100).take(4) {
        for tuple in t_op.transform_group(0, group, &gates) {
            out.extend(agg.process(0, tuple));
        }
    }
    out.extend(agg.flush());
    assert!(!out.is_empty(), "aggregation produced results");
    for r in &out {
        let v = r.updf("v_avg").unwrap();
        // The vortex-core radial velocities are within the Nyquist band.
        assert!(v.mean().abs() <= params().nyquist_velocity() + 1.0);
        assert!(v.std_dev() > 0.0);
    }
}

#[test]
fn detection_position_error_is_small_at_fine_averaging() {
    let field = WeatherField::tornadic_default();
    let node = RadarNode::new(0, [0.0, 0.0], params());
    let bearing = (9_000.0f64).atan2(12_000.0);
    let pulses = node.sector_scan(&field, bearing - 0.12, bearing + 0.12, 0.0, 53);
    let scan = compute_moments(&pulses, &params(), 40);
    let res = detect_tornados(&scan, [0.0, 0.0], &DetectorConfig::default());
    assert!(!res.detections.is_empty());
    let d = &res.detections[0];
    let err = ((d.position[0] - 12_000.0).powi(2) + (d.position[1] - 9_000.0).powi(2)).sqrt();
    assert!(err < 1_500.0, "location error {err:.0} m");
}

#[test]
fn quiet_scene_never_alarms_across_averaging_sizes() {
    let field = WeatherField::quiet();
    let cfg = ScenarioConfig {
        params: params(),
        num_scans: 1,
        scan_period_s: 1.0,
        ..Default::default()
    };
    for n in [40usize, 100, 500] {
        let row = run_scenario(&field, n, &cfg);
        assert_eq!(row.reported_tornados, 0.0, "false alarm at N={n}");
    }
}
