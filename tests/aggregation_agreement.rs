//! Cross-crate integration: every SUM strategy must agree on the first
//! two moments of the result distribution (they differ in shape fidelity
//! and cost, not in calibration), across randomized windows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::{Dist, GaussianMixture};

fn random_window(n: usize, seed: u64) -> Vec<Dist> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.gen_range(0..3) {
            0 => Dist::gaussian(rng.gen::<f64>() * 10.0 - 5.0, 0.3 + rng.gen::<f64>()),
            1 => Dist::uniform(0.0, 1.0 + rng.gen::<f64>() * 3.0),
            _ => Dist::Mixture(GaussianMixture::from_triples(&[
                (0.5, rng.gen::<f64>() * 4.0 - 2.0, 0.5),
                (0.5, rng.gen::<f64>() * 4.0 + 2.0, 0.8),
            ])),
        })
        .collect()
}

fn run_strategy(inputs: &[Dist], strategy: Strategy) -> Updf {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    let mut agg = WindowedAggregate::new(
        WindowKind::Count(inputs.len()),
        |_t: &Tuple| GroupKey::Unit,
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "s".into(),
            strategy,
        }],
    );
    let mut out = Vec::new();
    for (i, d) in inputs.iter().enumerate() {
        out.extend(agg.process(
            0,
            Tuple::new(
                schema.clone(),
                vec![Value::Int(0), Value::from(Updf::Parametric(d.clone()))],
                i as u64,
            ),
        ));
    }
    out.extend(agg.flush());
    assert_eq!(out.len(), 1);
    out[0].updf("s").unwrap().clone()
}

#[test]
fn all_strategies_agree_on_moments() {
    for seed in 0..5u64 {
        let inputs = random_window(60, seed);
        let exact_mean: f64 = inputs.iter().map(|d| d.mean()).sum();
        let exact_var: f64 = inputs.iter().map(|d| d.variance()).sum();
        let sd = exact_var.sqrt();

        let strategies = vec![
            ("auto", Strategy::Auto),
            ("clt", Strategy::Clt),
            (
                "cf_approx",
                Strategy::CfApprox {
                    skew_threshold: 0.3,
                    kurt_threshold: 1.0,
                },
            ),
            (
                "cf_inversion",
                Strategy::CfInversion {
                    bins: 256,
                    span_sigmas: 8.0,
                },
            ),
            (
                "histogram",
                Strategy::HistogramSampling {
                    buckets: 100,
                    samples: 20_000,
                },
            ),
        ];
        for (name, strat) in strategies {
            let updf = run_strategy(&inputs, strat);
            assert!(
                (updf.mean() - exact_mean).abs() < 0.05 * sd.max(1.0),
                "seed {seed} strategy {name}: mean {} vs exact {exact_mean}",
                updf.mean()
            );
            assert!(
                (updf.variance() - exact_var).abs() < 0.15 * exact_var,
                "seed {seed} strategy {name}: var {} vs exact {exact_var}",
                updf.variance()
            );
        }
    }
}

#[test]
fn inversion_and_cf_approx_agree_in_distribution() {
    // Beyond moments: TV distance between the exact inversion and the CF
    // approximation must be small for CLT-sized windows.
    let inputs = random_window(80, 99);
    let exact = run_strategy(
        &inputs,
        Strategy::CfInversion {
            bins: 512,
            span_sigmas: 8.0,
        },
    );
    let approx = run_strategy(
        &inputs,
        Strategy::CfApprox {
            skew_threshold: 0.3,
            kurt_threshold: 1.0,
        },
    );
    let Updf::Histogram(h) = &exact else {
        panic!("inversion returns a histogram")
    };
    let Updf::Parametric(d) = &approx else {
        panic!("approx returns parametric")
    };
    let tv = uncertain_streams::prob::metrics::tv_distance_grid(d, h);
    assert!(tv < 0.05, "TV(exact, approx) = {tv}");
}
