//! Q2-style integration: probabilistic location join, lineage
//! propagation, and the §5.2 correlation hazard — an aggregation over
//! join outputs that share a base tuple must use lineage to stay exact.

use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::join::{JoinCondition, WindowJoin};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::{Dist, MvGaussian};

fn obj_schema() -> std::sync::Arc<Schema> {
    Schema::builder()
        .field("tag_id", DataType::Int)
        .field("loc", DataType::UncertainVec(2))
        .build()
}

fn temp_schema() -> std::sync::Arc<Schema> {
    Schema::builder()
        .field("loc", DataType::UncertainVec(2))
        .field("temp", DataType::Uncertain)
        .build()
}

fn obj(ts: u64, id: i64, xy: [f64; 2]) -> Tuple {
    Tuple::new(
        obj_schema(),
        vec![
            Value::Int(id),
            Value::from(Updf::Mv(MvGaussian::isotropic(vec![xy[0], xy[1]], 0.4))),
        ],
        ts,
    )
}

fn temp(ts: u64, xy: [f64; 2], mean: f64, sd: f64) -> Tuple {
    Tuple::new(
        temp_schema(),
        vec![
            Value::from(Updf::Mv(MvGaussian::isotropic(vec![xy[0], xy[1]], 0.2))),
            Value::from(Updf::Parametric(Dist::gaussian(mean, sd))),
        ],
        ts,
    )
}

#[test]
fn join_outputs_carry_joint_lineage_and_probability() {
    // The join condition reads the *input* fields; the right side's
    // clashing `loc` is only renamed to `r_loc` in the output schema.
    let mut join = WindowJoin::new(
        3_000,
        JoinCondition::LocEquals {
            left_field: "loc".into(),
            right_field: "loc".into(),
            epsilon: 3.0,
        },
        0.2,
    );
    let o = obj(100, 7, [5.0, 5.0]);
    let o_lineage = o.lineage.clone();
    join.process(0, o);
    let t = temp(200, [5.2, 4.9], 65.0, 1.0);
    let t_lineage = t.lineage.clone();
    let out = join.process(1, t);
    assert_eq!(out.len(), 1);
    let alert = &out[0];
    // Exact expectation: the difference of the two isotropic locations
    // is diagonal with per-axis variance 0.4² + 0.2², so the box
    // probability is the product of independent 1-d Gaussian bands —
    // computable in closed form without touching the multivariate code
    // path under test.
    let sd = (0.4f64 * 0.4 + 0.2 * 0.2).sqrt();
    let expected = Dist::gaussian(5.0 - 5.2, sd).prob_in(-3.0, 3.0)
        * Dist::gaussian(5.0 - 4.9, sd).prob_in(-3.0, 3.0);
    assert!(
        (alert.existence - expected).abs() < 1e-9,
        "co-located: p = {}, closed form {}",
        alert.existence,
        expected
    );
    assert_eq!(alert.lineage, o_lineage.union(&t_lineage));
    assert!(alert.get("temp").is_ok());
    assert!(alert.get("r_loc").is_ok(), "clashing field prefixed");
}

#[test]
fn correlated_3d_location_join_probability_is_quadrature_exact() {
    // A correlated 3-d location forces the join's box probability
    // through the deterministic Genz quadrature (d > 2, off-diagonal
    // covariance). Built block-diagonal — a correlated (x, y) block plus
    // an independent z — so the exact answer factors into the 2-d
    // conditional quadrature times a closed-form marginal band, and the
    // tolerance can sit at quadrature accuracy instead of the ~1e-2 the
    // old Monte-Carlo fallback allowed.
    let obj_schema = Schema::builder()
        .field("tag_id", DataType::Int)
        .field("loc", DataType::UncertainVec(3))
        .build();
    let temp_schema = Schema::builder()
        .field("loc", DataType::UncertainVec(3))
        .field("temp", DataType::Uncertain)
        .build();
    let obj_cov = vec![
        0.16, 0.08, 0.0, //
        0.08, 0.16, 0.0, //
        0.0, 0.0, 0.16,
    ];
    let o = Tuple::new(
        obj_schema,
        vec![
            Value::Int(7),
            Value::from(Updf::Mv(MvGaussian::new(vec![5.0, 5.0, 1.0], obj_cov))),
        ],
        100,
    );
    let t = Tuple::new(
        temp_schema,
        vec![
            Value::from(Updf::Mv(MvGaussian::isotropic(vec![5.2, 4.9, 1.3], 0.2))),
            Value::from(Updf::Parametric(Dist::gaussian(65.0, 1.0))),
        ],
        200,
    );
    let mut join = WindowJoin::new(
        3_000,
        JoinCondition::LocEquals {
            left_field: "loc".into(),
            right_field: "loc".into(),
            epsilon: 0.5,
        },
        0.0,
    );
    join.process(0, o);
    let out = join.process(1, t);
    assert_eq!(out.len(), 1);

    // Reference: difference covariance = obj_cov + 0.04·I, block-diagonal
    // in {x,y} ⊕ {z}.
    let diff_xy = MvGaussian::new(vec![5.0 - 5.2, 5.0 - 4.9], vec![0.20, 0.08, 0.08, 0.20]);
    let p_xy = diff_xy.prob_in_box(&[-0.5, -0.5], &[0.5, 0.5]);
    let p_z = Dist::gaussian(1.0 - 1.3, 0.2f64.sqrt()).prob_in(-0.5, 0.5);
    let expected = p_xy * p_z;
    assert!(
        (out[0].existence - expected).abs() < 1e-6,
        "Genz join probability {} vs block factorization {}",
        out[0].existence,
        expected
    );
}

#[test]
fn shared_base_tuple_correlation_detected_and_handled() {
    // One temperature tuple joins two objects; summing the two outputs'
    // temperatures naively would halve the variance. With provenance
    // columns the aggregate recognizes the shared source and scales
    // exactly: Var(2X) = 4σ², not 2σ².
    let mut join = WindowJoin::new(
        3_000,
        JoinCondition::LocEquals {
            left_field: "loc".into(),
            right_field: "loc".into(),
            epsilon: 3.0,
        },
        0.1,
    )
    .with_provenance("temp", 1);

    join.process(0, obj(100, 1, [5.0, 5.0]));
    join.process(0, obj(150, 2, [5.5, 5.2]));
    let outputs = join.process(1, temp(200, [5.2, 5.0], 65.0, 2.0));
    assert_eq!(outputs.len(), 2);
    assert!(outputs[0].lineage.overlaps(&outputs[1].lineage));

    let mut agg = WindowedAggregate::new(
        WindowKind::Count(2),
        |_t: &Tuple| GroupKey::Unit,
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Auto,
        }],
    );
    let mut res = Vec::new();
    for mut o in outputs {
        // Normalize existence for the aggregation-variance check.
        o.existence = 1.0;
        res.extend(agg.process(0, o));
    }
    res.extend(agg.flush());
    assert_eq!(res.len(), 1);
    let total = res[0].updf("total").unwrap();
    assert!((total.mean() - 130.0).abs() < 1e-9);
    // Exact: Var(2X) = 4·4 = 16. Naive independence would claim 8.
    assert!(
        (total.variance() - 16.0).abs() < 1e-9,
        "lineage-aware variance {} (naive would be 8)",
        total.variance()
    );
}

#[test]
fn independent_sources_still_add_variances() {
    let mut join = WindowJoin::new(
        3_000,
        JoinCondition::LocEquals {
            left_field: "loc".into(),
            right_field: "loc".into(),
            epsilon: 3.0,
        },
        0.1,
    )
    .with_provenance("temp", 1);

    // Two objects in different places, two separate temperature tuples.
    join.process(0, obj(100, 1, [5.0, 5.0]));
    join.process(0, obj(150, 2, [40.0, 40.0]));
    let mut outputs = Vec::new();
    outputs.extend(join.process(1, temp(200, [5.0, 5.0], 60.0, 2.0)));
    outputs.extend(join.process(1, temp(210, [40.0, 40.0], 70.0, 2.0)));
    assert_eq!(outputs.len(), 2);
    assert!(!outputs[0].lineage.overlaps(&outputs[1].lineage));

    let mut agg = WindowedAggregate::new(
        WindowKind::Count(2),
        |_t: &Tuple| GroupKey::Unit,
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Auto,
        }],
    );
    let mut res = Vec::new();
    for mut o in outputs {
        o.existence = 1.0;
        res.extend(agg.process(0, o));
    }
    res.extend(agg.flush());
    let total = res[0].updf("total").unwrap();
    assert!((total.mean() - 130.0).abs() < 1e-9);
    assert!(
        (total.variance() - 8.0).abs() < 1e-9,
        "independent sources: Var = σ²+σ² = 8, got {}",
        total.variance()
    );
}
