//! The sharded runtime must reproduce `run_batched` output *exactly* —
//! same tuples, timestamps, existence probabilities, and lineage — at
//! every shard count and worker-pool size, and its merged output must be
//! byte-for-byte deterministic across runs and across shard counts.
//! Graphs whose operators cannot be key-partitioned must degrade to a
//! pinned single-shard plan, never to wrong answers. Panicking operators
//! must surface as `Err` at the driver.

use uncertain_streams::core::batch::Batch;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::join::{JoinCondition, WindowJoin};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::{Operator, Passthrough};
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{
    EngineError, GroupKey, NodeId, QueryGraph, ThreadedExecutor, Tuple, Updf, Value,
};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::runtime::ShardedExecutor;
use uncertain_streams::telemetry::{MetricValue, MetricsRegistry, TraceDetail};

// ---------------------------------------------------------------------
// Q1-style keyed aggregation: select → project → tumbling group-by SUM.
// ---------------------------------------------------------------------

fn q1_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(
        Select::new(Predicate::UncertainAbove("x".into(), 0.0), 0.1).without_conditioning(),
    ));
    let project = g.add(Box::new(Project::new(vec![Derivation::Linear {
        input: "x".into(),
        a: 0.5,
        b: 1.0,
        out: "y".into(),
    }])));
    let agg = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

fn q1_inputs() -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    (0..700u64)
        .map(|i| {
            let mean = (i % 13) as f64 - 4.0;
            let mut t = Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 7) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                i * 10,
            );
            // Fractional existences must survive sharding bit-exactly.
            t.existence = 1.0 - (i % 5) as f64 * 0.05;
            t
        })
        .collect()
}

/// One sink row in full canonical form: every field that could diverge
/// under a buggy runtime (values, window metadata, timestamp, existence
/// bits, lineage ids).
type CanonicalRow = (String, u64, i64, i64, u64, u64, Vec<u64>);

fn canonical(tuples: &[Tuple]) -> Vec<CanonicalRow> {
    let mut rows: Vec<_> = tuples
        .iter()
        .map(|t| {
            let total = t.updf("total").unwrap();
            (
                t.str("group").unwrap().to_string(),
                t.get("window_start").unwrap().as_time().unwrap(),
                t.int("n_tuples").unwrap(),
                (total.mean() * 1e6).round() as i64,
                t.ts,
                t.existence.to_bits(),
                t.lineage.ids().to_vec(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn keyed_plan_describes_as_fully_parallel() {
    let (proto, _) = q1_graph();
    let plan = ShardedExecutor::shard_plan(&proto).unwrap();
    assert!(plan.is_parallel());
    assert_eq!(plan.num_entries(), 1);
    assert_eq!(plan.pinned_entries(), 0, "nothing degrades in Q1");
    let describe = plan.describe();
    assert!(
        describe.contains("keyed on") && describe.contains("0/1 entries pinned"),
        "unexpected describe(): {describe}"
    );
    let rules: Vec<_> = plan.entry_rules().collect();
    assert_eq!(rules.len(), 1);
    assert_eq!(rules[0].0, "in");
}

#[test]
fn sharded_matches_run_batched_across_shard_counts() {
    let inputs = q1_inputs();
    let (mut g, sink) = q1_graph();
    let reference = canonical(
        &g.run_batched(vec![("in".into(), 0, inputs.clone())], 64)
            .unwrap()[&sink],
    );
    assert!(!reference.is_empty(), "pipeline produced output");

    for shards in [1usize, 2, 8] {
        for workers in [1usize, 2] {
            let exec = ShardedExecutor::new(shards)
                .with_workers(workers)
                .with_batch_size(48);
            let out = exec
                .run(|| q1_graph().0, vec![("in".into(), 0, inputs.clone())])
                .unwrap();
            assert_eq!(
                reference,
                canonical(&out[&sink]),
                "shards={shards} workers={workers} diverged from run_batched"
            );
        }
    }
}

/// Byte-for-byte determinism: repeated runs and different shard counts
/// must produce the identical merged output sequence (not just the same
/// multiset) — compared via full Debug rendering, which spells out every
/// distribution parameter.
#[test]
fn sharded_output_is_byte_identical_across_runs_and_shard_counts() {
    let inputs = q1_inputs();
    let render = |shards: usize, workers: usize| -> String {
        let exec = ShardedExecutor::new(shards)
            .with_workers(workers)
            .with_batch_size(32);
        let (_, sink) = q1_graph();
        let out = exec
            .run(|| q1_graph().0, vec![("in".into(), 0, inputs.clone())])
            .unwrap();
        out[&sink]
            .iter()
            .map(|t| {
                format!(
                    "{:?}|{:x}|{:?}\n",
                    t.values(),
                    t.existence.to_bits(),
                    t.lineage
                )
            })
            .collect()
    };
    let reference = render(4, 2);
    assert_eq!(reference, render(4, 2), "same config must be reproducible");
    assert_eq!(reference, render(4, 1), "worker count must not matter");
    assert_eq!(reference, render(2, 2), "shard count must not matter");
    assert_eq!(reference, render(8, 2), "shard count must not matter");
}

// ---------------------------------------------------------------------
// Two-source sharded equi-join.
// ---------------------------------------------------------------------

fn join_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let join = g.add(Box::new(WindowJoin::new(
        5_000,
        JoinCondition::KeyEquals {
            left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
        },
        0.0,
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(join, sink, 0).unwrap();
    g.source("left", join);
    g.source("right", join);
    g.sink(sink);
    (g, sink)
}

fn join_inputs(ts_shift: u64) -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("id", DataType::Int)
        .field("k", DataType::Int)
        .build();
    (0..120u64)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![Value::Int(i as i64), Value::Int((i % 9) as i64)],
                (i / 10) * 700 + ts_shift + (i % 10),
            )
        })
        .collect()
}

fn join_rows(tuples: &[Tuple]) -> Vec<(i64, i64, u64, u64, Vec<u64>)> {
    let mut rows: Vec<_> = tuples
        .iter()
        .map(|t| {
            (
                t.int("id").unwrap(),
                t.int("r_id").unwrap(),
                t.ts,
                t.existence.to_bits(),
                t.lineage.ids().to_vec(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn two_source_sharded_join_matches_run_batched() {
    let (left, right) = (join_inputs(0), join_inputs(350));
    let feeds = || {
        vec![
            ("left".to_string(), 0usize, left.clone()),
            ("right".to_string(), 1usize, right.clone()),
        ]
    };
    let (mut g, sink) = join_graph();
    let reference = join_rows(&g.run_batched(feeds(), 32).unwrap()[&sink]);
    assert!(!reference.is_empty(), "join produced matches");

    for shards in [1usize, 2, 8] {
        let exec = ShardedExecutor::new(shards)
            .with_workers(2)
            .with_batch_size(16);
        let out = exec.run(|| join_graph().0, feeds()).unwrap();
        assert_eq!(
            reference,
            join_rows(&out[&sink]),
            "two-source join, shards={shards}"
        );
    }
}

// ---------------------------------------------------------------------
// Fan-out > 1: one stream feeding a keyed aggregate and a raw sink.
// ---------------------------------------------------------------------

fn fanout_graph() -> (QueryGraph, NodeId, NodeId) {
    let mut g = QueryGraph::new();
    let src = g.add(Box::new(Passthrough::new("src")));
    let agg = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::ExactParametric,
        }],
    )));
    let raw = g.add(Box::new(Passthrough::new("raw")));
    g.connect(src, agg, 0).unwrap();
    g.connect(src, raw, 0).unwrap();
    g.source("in", src);
    g.sink(agg);
    g.sink(raw);
    (g, agg, raw)
}

#[test]
fn fanout_branches_match_run_batched() {
    let inputs = q1_inputs();
    let (mut g, agg, raw) = fanout_graph();
    let single = g
        .run_batched(vec![("in".into(), 0, inputs.clone())], 64)
        .unwrap();
    let ref_agg = canonical(&single[&agg]);
    let raw_rows = |ts: &[Tuple]| {
        let mut rows: Vec<_> = ts
            .iter()
            .map(|t| (t.ts, t.int("g").unwrap(), t.existence.to_bits()))
            .collect();
        rows.sort();
        rows
    };
    let ref_raw = raw_rows(&single[&raw]);
    assert!(!ref_agg.is_empty() && !ref_raw.is_empty());

    for shards in [2usize, 8] {
        let exec = ShardedExecutor::new(shards)
            .with_workers(2)
            .with_batch_size(64);
        let out = exec
            .run(|| fanout_graph().0, vec![("in".into(), 0, inputs.clone())])
            .unwrap();
        assert_eq!(
            ref_agg,
            canonical(&out[&agg]),
            "agg branch, shards={shards}"
        );
        assert_eq!(ref_raw, raw_rows(&out[&raw]), "raw branch, shards={shards}");
    }
}

// ---------------------------------------------------------------------
// EOS with empty shards: fewer distinct keys than shards.
// ---------------------------------------------------------------------

#[test]
fn eos_with_empty_shards_completes_and_matches() {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    // One group only: at 8 shards, at least 7 pipelines see zero tuples
    // and must still flush cleanly through EOS.
    let inputs: Vec<Tuple> = (0..50u64)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int(1),
                    Value::from(Updf::Parametric(Dist::gaussian(2.0, 0.1))),
                ],
                i * 10,
            )
        })
        .collect();
    let (mut g, sink) = q1_graph();
    let reference = canonical(
        &g.run_batched(vec![("in".into(), 0, inputs.clone())], 16)
            .unwrap()[&sink],
    );

    let exec = ShardedExecutor::new(8).with_workers(2).with_batch_size(8);
    let out = exec
        .run(|| q1_graph().0, vec![("in".into(), 0, inputs.clone())])
        .unwrap();
    assert_eq!(reference, canonical(&out[&sink]));
}

// ---------------------------------------------------------------------
// Staged plans: chained keyed anchors shard stage-by-stage through an
// exchange instead of collapsing to a pinned single pipeline.
// ---------------------------------------------------------------------

/// Q1/Q2-style chain: select → tumbling group-by SUM → keyed equi-join
/// against a second source entering the join directly. Two keyed
/// anchors in one cone — the configuration the single-stage planner
/// could only pin.
fn agg_join_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(
        Select::new(Predicate::UncertainAbove("x".into(), 0.0), 0.1).without_conditioning(),
    ));
    let agg = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::ExactParametric,
        }],
    )));
    // Range far beyond the feed's timespan: the pair set is the full
    // same-key cross product, insensitive to cross-port interleaving.
    let join = g.add(Box::new(WindowJoin::new(
        1_000_000,
        JoinCondition::KeyEquals {
            left: Box::new(|t| GroupKey::from_value(t.get("group").ok()?)),
            right: Box::new(|t| GroupKey::from_value(t.get("gname").ok()?)),
        },
        0.0,
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, agg, 0).unwrap();
    g.connect(agg, join, 0).unwrap();
    g.connect(join, sink, 0).unwrap();
    g.source("readings", select);
    g.source("refs", join);
    g.sink(sink);
    (g, sink)
}

fn agg_join_inputs() -> (Vec<Tuple>, Vec<Tuple>) {
    let readings = q1_inputs();
    let ref_schema = Schema::builder()
        .field("rid", DataType::Int)
        .field("gname", DataType::Str)
        .build();
    // Reference rows keyed by the aggregate's group rendering, with
    // timestamps interleaving the windows' close times.
    let refs: Vec<Tuple> = (0..40u64)
        .map(|j| {
            Tuple::new(
                ref_schema.clone(),
                vec![Value::Int(j as i64), Value::from(format!("Int({})", j % 7))],
                j * 173,
            )
        })
        .collect();
    (readings, refs)
}

type JoinedRow = (String, u64, i64, i64, i64, u64, u64, Vec<u64>);

fn joined_rows(tuples: &[Tuple]) -> Vec<JoinedRow> {
    let mut rows: Vec<JoinedRow> = tuples
        .iter()
        .map(|t| {
            let total = t.updf("total").unwrap();
            (
                t.str("group").unwrap().to_string(),
                t.get("window_end").unwrap().as_time().unwrap(),
                t.int("n_tuples").unwrap(),
                (total.mean() * 1e6).round() as i64,
                t.int("rid").unwrap(),
                t.ts,
                t.existence.to_bits(),
                t.lineage.ids().to_vec(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn agg_into_keyed_join_stages_with_an_exchange_and_no_pinning() {
    let (proto, _) = agg_join_graph();
    let plan = ShardedExecutor::shard_plan(&proto).unwrap();
    assert_eq!(plan.num_stages(), 2, "cut at the second keyed anchor");
    assert_eq!(plan.cut_edges().len(), 1, "one exchange edge (agg → join)");
    assert!(plan.is_parallel());
    assert_eq!(
        plan.pinned_entries(),
        0,
        "chained keyed anchors must not pin: {}",
        plan.describe()
    );
    let describe = plan.describe();
    assert!(
        describe.contains("stage 0:")
            && describe.contains("stage 1:")
            && describe.contains("exchange `aggregate` -> `join` (port 0)")
            && describe.contains("entry `readings` -> keyed on `aggregate`")
            && describe.contains("entry `refs` -> keyed on `join`")
            && describe.contains("0/2 entries pinned")
            && describe.contains("2 stages, 1 exchange edge"),
        "unexpected describe():\n{describe}"
    );
    assert!(
        !describe.contains("pinned to shard 0") && !describe.contains("degraded"),
        "staged plan must not degrade:\n{describe}"
    );
}

#[test]
fn staged_agg_join_matches_run_batched_across_shard_and_worker_counts() {
    let (readings, refs) = agg_join_inputs();
    let feeds = || {
        vec![
            ("readings".to_string(), 0usize, readings.clone()),
            ("refs".to_string(), 1usize, refs.clone()),
        ]
    };
    let (mut g, sink) = agg_join_graph();
    let reference = joined_rows(&g.run_batched(feeds(), 64).unwrap()[&sink]);
    assert!(!reference.is_empty(), "windows joined against references");

    for shards in [1usize, 2, 8] {
        for workers in [1usize, 2] {
            let exec = ShardedExecutor::new(shards)
                .with_workers(workers)
                .with_batch_size(48);
            let out = exec.run(|| agg_join_graph().0, feeds()).unwrap();
            assert_eq!(
                reference,
                joined_rows(&out[&sink]),
                "staged agg→join diverged at shards={shards} workers={workers}"
            );
        }
    }
}

#[test]
fn staged_output_is_byte_identical_across_runs_and_shard_counts() {
    let (readings, refs) = agg_join_inputs();
    let render = |shards: usize, workers: usize| -> String {
        let exec = ShardedExecutor::new(shards)
            .with_workers(workers)
            .with_batch_size(32);
        let (_, sink) = agg_join_graph();
        let out = exec
            .run(
                || agg_join_graph().0,
                vec![
                    ("readings".to_string(), 0usize, readings.clone()),
                    ("refs".to_string(), 1usize, refs.clone()),
                ],
            )
            .unwrap();
        out[&sink]
            .iter()
            .map(|t| {
                format!(
                    "{:?}|{:x}|{:?}\n",
                    t.values(),
                    t.existence.to_bits(),
                    t.lineage
                )
            })
            .collect()
    };
    let reference = render(4, 2);
    assert_eq!(reference, render(4, 2), "same config must be reproducible");
    assert_eq!(reference, render(4, 1), "worker count must not matter");
    assert_eq!(reference, render(2, 2), "shard count must not matter");
    assert_eq!(reference, render(8, 2), "shard count must not matter");
    assert_eq!(
        reference,
        render(1, 1),
        "single pipeline agrees byte-for-byte"
    );
}

/// Aggregate feeding an aggregate on a *different* key: the window-count
/// distribution re-keys each window row, so the second aggregate's
/// groups cut across the first's — only an exchange can shard this.
fn agg_agg_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let agg1 = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::ExactParametric,
        }],
    )));
    let agg2 = g.add(Box::new(
        WindowedAggregate::new(
            WindowKind::Tumbling(4_000),
            |t: &Tuple| GroupKey::from_value(t.get("n_tuples").unwrap()).unwrap(),
            vec![AggSpec {
                field: "total".into(),
                func: AggFunc::Sum,
                out: "grand".into(),
                strategy: Strategy::ExactParametric,
            }],
        )
        .named("reagg"),
    ));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(agg1, agg2, 0).unwrap();
    g.connect(agg2, sink, 0).unwrap();
    g.source("in", agg1);
    g.sink(sink);
    (g, sink)
}

#[test]
fn staged_agg_into_agg_on_different_key_matches_run_batched_bit_exactly() {
    let (proto, _) = agg_agg_graph();
    let plan = ShardedExecutor::shard_plan(&proto).unwrap();
    assert_eq!(plan.num_stages(), 2);
    assert_eq!(plan.pinned_entries(), 0);
    let describe = plan.describe();
    assert!(
        describe.contains("exchange `aggregate` -> `reagg` (port 0): keyed on `reagg`")
            && !describe.contains("pinned to shard 0"),
        "unexpected describe():\n{describe}"
    );

    let inputs = q1_inputs();
    let (mut g, sink) = agg_agg_graph();
    let reference: Vec<String> = g
        .run_batched(vec![("in".into(), 0, inputs.clone())], 64)
        .unwrap()[&sink]
        .iter()
        .map(|t| {
            format!(
                "{:?}|{:x}|{:?}",
                t.values(),
                t.existence.to_bits(),
                t.lineage
            )
        })
        .collect();
    assert!(!reference.is_empty());

    for shards in [1usize, 2, 8] {
        for workers in [1usize, 2] {
            let exec = ShardedExecutor::new(shards)
                .with_workers(workers)
                .with_batch_size(48);
            let out = exec
                .run(|| agg_agg_graph().0, vec![("in".into(), 0, inputs.clone())])
                .unwrap();
            let mut got: Vec<String> = out[&sink]
                .iter()
                .map(|t| {
                    format!(
                        "{:?}|{:x}|{:?}",
                        t.values(),
                        t.existence.to_bits(),
                        t.lineage
                    )
                })
                .collect();
            let mut want = reference.clone();
            // The merged order is canonical in both paths; sorting keeps
            // the comparison shape-agnostic while the strings keep every
            // bit of every distribution parameter in play.
            got.sort();
            want.sort();
            assert_eq!(
                want, got,
                "agg→agg re-key diverged at shards={shards} workers={workers}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pipelined (eager) exchange delivery: sealed watermark intervals cross
// the exchange ahead of the drain barrier — a scheduling change that
// must never show in the output.
// ---------------------------------------------------------------------

/// The full pipelining matrix: eager {on, off} × shards {1, 2, 8} ×
/// workers {1, 2} over the staged agg→join graph, every cell exactly
/// equal (values/ts/existence/lineage) to `run_batched`.
#[test]
fn pipelined_delivery_matrix_matches_run_batched() {
    let (readings, refs) = agg_join_inputs();
    let feeds = || {
        vec![
            ("readings".to_string(), 0usize, readings.clone()),
            ("refs".to_string(), 1usize, refs.clone()),
        ]
    };
    let (mut g, sink) = agg_join_graph();
    let reference = joined_rows(&g.run_batched(feeds(), 64).unwrap()[&sink]);
    assert!(!reference.is_empty(), "windows joined against references");

    for eager in [true, false] {
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 2] {
                let exec = ShardedExecutor::new(shards)
                    .with_workers(workers)
                    .with_batch_size(48)
                    .with_eager_exchange(eager);
                let out = exec.run(|| agg_join_graph().0, feeds()).unwrap();
                assert_eq!(
                    reference,
                    joined_rows(&out[&sink]),
                    "eager={eager} shards={shards} workers={workers} diverged from run_batched"
                );
            }
        }
    }
}

/// Byte-for-byte across the toggle: the merged output rendering (full
/// Debug of every distribution parameter, existence bits, lineage) with
/// pipelined delivery on must equal the drain-barrier rendering at
/// every shard/worker config.
#[test]
fn pipelined_and_barrier_delivery_render_identical_bytes() {
    let (readings, refs) = agg_join_inputs();
    let render = |shards: usize, workers: usize, eager: bool| -> String {
        let exec = ShardedExecutor::new(shards)
            .with_workers(workers)
            .with_batch_size(32)
            .with_eager_exchange(eager);
        let (_, sink) = agg_join_graph();
        let out = exec
            .run(
                || agg_join_graph().0,
                vec![
                    ("readings".to_string(), 0usize, readings.clone()),
                    ("refs".to_string(), 1usize, refs.clone()),
                ],
            )
            .unwrap();
        out[&sink]
            .iter()
            .map(|t| {
                format!(
                    "{:?}|{:x}|{:?}\n",
                    t.values(),
                    t.existence.to_bits(),
                    t.lineage
                )
            })
            .collect()
    };
    let reference = render(4, 2, true);
    assert_eq!(
        reference,
        render(4, 2, false),
        "the toggle must not change one byte"
    );
    assert_eq!(reference, render(2, 1, false), "barrier, other config");
    assert_eq!(reference, render(8, 2, true), "eager, other config");
    assert_eq!(reference, render(1, 1, true), "single pipeline agrees");
}

/// The eager telemetry is an honest A/B witness: a pipelined run ticks
/// `eager_forwards` on the exchange stage, a barrier run leaves it at
/// zero, the total exchange traffic is identical either way, the
/// run-ahead depth gauge reads zero once the finish barrier drained
/// everything — and the outputs match exactly.
#[test]
fn eager_forward_counters_tick_only_with_pipelining_on() {
    let inputs = q1_inputs();
    let run = |eager: bool| -> (Vec<String>, u64, u64, i64) {
        let exec = ShardedExecutor::new(4)
            .with_workers(2)
            .with_batch_size(48)
            .with_eager_exchange(eager);
        let (_, sink) = agg_agg_graph();
        let mut session = exec.session(|| agg_agg_graph().0).unwrap();
        let telem = session.telemetry().clone();
        push_feed(&mut session, vec![("in".into(), 0, inputs.clone())], 48);
        let out = session.finish().unwrap();
        let mut rows: Vec<String> = out[&sink]
            .iter()
            .map(|t| {
                format!(
                    "{:?}|{:x}|{:?}",
                    t.values(),
                    t.existence.to_bits(),
                    t.lineage
                )
            })
            .collect();
        rows.sort();
        (
            rows,
            telem.eager_forwards(1).get(),
            telem.exchange_forwarded(1).get(),
            telem.interval_depth(1).get(),
        )
    };

    let (rows_on, eager_on, fwd_on, depth_on) = run(true);
    let (rows_off, eager_off, fwd_off, depth_off) = run(false);
    assert!(!rows_on.is_empty());
    assert_eq!(rows_on, rows_off, "the toggle must not change the output");
    assert!(
        eager_on > 0,
        "pipelined delivery must have forwarded intervals ahead of the barrier"
    );
    assert_eq!(eager_off, 0, "barrier-only runs never forward eagerly");
    assert_eq!(
        fwd_on, fwd_off,
        "the same tuples cross the exchange either way"
    );
    assert_eq!(depth_on, 0, "the finish barrier resets the run-ahead depth");
    assert_eq!(depth_off, 0);
}

// ---------------------------------------------------------------------
// Keyless tuples at a keyed anchor spread round-robin (not shard 0).
// ---------------------------------------------------------------------

#[test]
fn keyless_tuples_spread_round_robin_and_stay_exact() {
    // The join's key closures return None for Null keys: such tuples
    // never participate in keyed state, so the router spreads them for
    // balance instead of parking them on shard 0 — and results must not
    // change.
    let schema = Schema::builder()
        .field("id", DataType::Int)
        .field("k", DataType::Int)
        .build();
    let mk = |shift: u64, keyless_every: u64| -> Vec<Tuple> {
        (0..120u64)
            .map(|i| {
                let k = if i % keyless_every == 0 {
                    Value::Null
                } else {
                    Value::Int((i % 9) as i64)
                };
                Tuple::new(
                    schema.clone(),
                    vec![Value::Int(i as i64), k],
                    (i / 10) * 700 + shift + (i % 10),
                )
            })
            .collect()
    };
    let (left, right) = (mk(0, 4), mk(350, 5));
    let feeds = || {
        vec![
            ("left".to_string(), 0usize, left.clone()),
            ("right".to_string(), 1usize, right.clone()),
        ]
    };
    let (mut g, sink) = join_graph();
    let reference = join_rows(&g.run_batched(feeds(), 32).unwrap()[&sink]);
    assert!(!reference.is_empty());

    for shards in [2usize, 8] {
        let exec = ShardedExecutor::new(shards)
            .with_workers(2)
            .with_batch_size(16);
        let out = exec.run(|| join_graph().0, feeds()).unwrap();
        assert_eq!(
            reference,
            join_rows(&out[&sink]),
            "keyless spread changed results at shards={shards}"
        );
    }
}

// ---------------------------------------------------------------------
// Non-shardable graphs degrade to a pinned plan, not to wrong answers.
// ---------------------------------------------------------------------

fn band_join_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let join = g.add(Box::new(WindowJoin::new(
        10_000,
        JoinCondition::BandUncertain {
            left_field: "x".into(),
            right_field: "x".into(),
            epsilon: 1.0,
        },
        0.05,
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(join, sink, 0).unwrap();
    g.source("left", join);
    g.source("right", join);
    g.sink(sink);
    (g, sink)
}

#[test]
fn probabilistic_join_degrades_to_pinned_plan_and_stays_exact() {
    let (proto, sink) = band_join_graph();
    let plan = ShardedExecutor::shard_plan(&proto).unwrap();
    assert!(
        !plan.is_parallel(),
        "a probabilistic join must pin the whole stream to one shard"
    );
    // Degraded parallelism is observable, not silent.
    assert_eq!(plan.num_entries(), 2);
    assert_eq!(plan.pinned_entries(), 2);
    let describe = plan.describe();
    assert!(
        describe.contains("2/2 entries pinned") && describe.contains("degraded"),
        "describe() must call out the fully pinned plan: {describe}"
    );
    let describe_via_exec = ShardedExecutor::describe_plan(&proto).unwrap();
    assert_eq!(describe, describe_via_exec);

    let schema = Schema::builder()
        .field("id", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    let mk = |off: f64, shift: u64| -> Vec<Tuple> {
        (0..40u64)
            .map(|i| {
                Tuple::new(
                    schema.clone(),
                    vec![
                        Value::Int(i as i64),
                        Value::from(Updf::Parametric(Dist::gaussian((i % 5) as f64 + off, 0.5))),
                    ],
                    i * 100 + shift,
                )
            })
            .collect()
    };
    let (left, right) = (mk(0.0, 0), mk(0.25, 50));
    let feeds = || {
        vec![
            ("left".to_string(), 0usize, left.clone()),
            ("right".to_string(), 1usize, right.clone()),
        ]
    };
    let (mut g, _) = band_join_graph();
    let reference = join_rows(&g.run_batched(feeds(), 16).unwrap()[&sink]);
    assert!(!reference.is_empty());

    let exec = ShardedExecutor::new(4).with_workers(2).with_batch_size(16);
    let out = exec.run(|| band_join_graph().0, feeds()).unwrap();
    assert_eq!(reference, join_rows(&out[&sink]));
}

// ---------------------------------------------------------------------
// Worker-thread panics surface as Err at the driver.
// ---------------------------------------------------------------------

struct PanicOn {
    trigger: i64,
}

impl Operator for PanicOn {
    fn name(&self) -> &str {
        "panic-on"
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        if tuple.int("v").unwrap() == self.trigger {
            panic!("injected operator failure at v={}", self.trigger);
        }
        vec![tuple]
    }

    fn partition_keys(&self) -> uncertain_streams::core::Partitioning {
        uncertain_streams::core::Partitioning::Any
    }
}

fn panic_graph(trigger: i64) -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let op = g.add(Box::new(PanicOn { trigger }));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(op, sink, 0).unwrap();
    g.source("in", op);
    g.sink(sink);
    (g, sink)
}

fn panic_inputs() -> Vec<Tuple> {
    let schema = Schema::builder().field("v", DataType::Int).build();
    (0..500u64)
        .map(|i| Tuple::new(schema.clone(), vec![Value::Int(i as i64)], i))
        .collect()
}

#[test]
fn sharded_runtime_surfaces_operator_panics() {
    let exec = ShardedExecutor::new(4).with_workers(2).with_batch_size(8);
    let err = exec
        .run(
            || panic_graph(250).0,
            vec![("in".into(), 0, panic_inputs())],
        )
        .unwrap_err();
    match err {
        EngineError::OperatorPanicked(msg) => {
            assert!(msg.contains("injected operator failure"), "msg: {msg}")
        }
        other => panic!("expected OperatorPanicked, got {other:?}"),
    }
}

/// A keyed anchor whose key attribute is minted *downstream* of the
/// source: the router evaluates the key on raw source tuples, so the key
/// closure panics — which must surface as `Err`, not unwind the caller.
#[test]
fn routing_key_panic_surfaces_as_error() {
    let factory = || {
        let mut g = QueryGraph::new();
        let project = g.add(Box::new(Project::new(vec![Derivation::Certain {
            out: uncertain_streams::core::schema::Field::new(
                "g2",
                uncertain_streams::core::schema::DataType::Int,
            ),
            f: Box::new(|t: &Tuple| Value::Int(t.int("g").unwrap() * 2)),
        }])));
        let agg = g.add(Box::new(WindowedAggregate::new(
            WindowKind::Tumbling(1_000),
            |t: &Tuple| GroupKey::from_value(t.get("g2").unwrap()).unwrap(),
            vec![AggSpec {
                field: "x".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::Clt,
            }],
        )));
        g.connect(project, agg, 0).unwrap();
        g.source("in", project);
        g.sink(agg);
        g
    };
    let exec = ShardedExecutor::new(4).with_workers(1);
    let err = exec
        .run(factory, vec![("in".into(), 0, q1_inputs())])
        .unwrap_err();
    match err {
        EngineError::OperatorPanicked(msg) => {
            assert!(msg.contains("routing"), "routing panic labeled: {msg}")
        }
        other => panic!("expected OperatorPanicked, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Telemetry non-perturbation: the always-on counters, sketches, and
// journal — with a registry bound on top — must not change one output
// byte, and what they count must reconcile exactly with the feed.
// ---------------------------------------------------------------------

/// Drive a session over a ts-ordered feed the same way
/// `ShardedExecutor::run` does (coalescing per-(node, port) batches),
/// so telemetry tests observe the production push pattern.
fn push_feed(
    session: &mut uncertain_streams::runtime::session::ShardedSession,
    inputs: Vec<(String, usize, Vec<Tuple>)>,
    batch_size: usize,
) {
    let feed = session.ordered_feed(inputs).unwrap();
    let mut cur: Option<(NodeId, usize, Batch)> = None;
    for (_, node, port, tuple) in feed {
        match &mut cur {
            Some((n, p, b)) if *n == node && *p == port && b.len() < batch_size => b.push(tuple),
            slot => {
                if let Some((n, p, b)) = slot.take() {
                    session.push_batch(n, p, b).unwrap();
                }
                *slot = Some((node, port, Batch::one(tuple)));
            }
        }
    }
    if let Some((n, p, b)) = cur {
        session.push_batch(n, p, b).unwrap();
    }
}

#[test]
fn staged_run_with_registry_bound_is_byte_identical_and_counters_reconcile() {
    let (readings, refs) = agg_join_inputs();
    let feeds = || {
        vec![
            ("readings".to_string(), 0usize, readings.clone()),
            ("refs".to_string(), 1usize, refs.clone()),
        ]
    };
    let (mut g, sink) = agg_join_graph();
    let reference = joined_rows(&g.run_batched(feeds(), 64).unwrap()[&sink]);
    assert!(!reference.is_empty());

    let exec = ShardedExecutor::new(4).with_workers(2).with_batch_size(48);
    let mut session = exec.session(|| agg_join_graph().0).unwrap();
    let registry = MetricsRegistry::new();
    session.bind_registry(&registry);
    let registered = registry.len();
    assert!(registered > 0, "binding must register the engine families");
    session.bind_registry(&registry);
    assert_eq!(
        registry.len(),
        registered,
        "bind_registry must be idempotent (adoption, not duplication)"
    );

    let telem = session.telemetry().clone();
    push_feed(&mut session, feeds(), 48);
    let out = session.finish().unwrap();
    assert_eq!(
        reference,
        joined_rows(&out[&sink]),
        "a bound registry must not perturb output"
    );

    // Ingest counters reconcile exactly with the feed.
    let n_total = (readings.len() + refs.len()) as u64;
    assert_eq!(telem.tuples_pushed.get(), n_total);
    assert!(telem.batches_pushed.get() > 0);
    let routed0: u64 = (0..4).map(|s| telem.routed(0, s).get()).sum();
    assert_eq!(
        routed0,
        readings.len() as u64,
        "every reading routes into exactly one stage-0 shard"
    );
    let routed1: u64 = (0..4).map(|s| telem.routed(1, s).get()).sum();
    assert!(
        routed1 >= refs.len() as u64,
        "stage 1 sees at least the refs entries"
    );
    assert!(
        telem.exchange_forwarded(1).get() > 0,
        "sealed window rows must cross the exchange"
    );

    // Per-operator counters: the stage-0 entry operator sees the whole
    // readings feed, split across shards.
    let select_in: u64 = telem
        .op_entries()
        .iter()
        .filter(|e| e.op == "select" && e.stage == 0)
        .map(|e| e.telem.tuples_in.get())
        .sum();
    assert_eq!(select_in, readings.len() as u64);

    // Watermark-lag sketches: seals happened, lag is non-zero (the feed
    // spans event time), quantiles are ordered.
    assert!(telem.watermark_sealed.get() > 0);
    let lag = telem.watermark_lag(0).snapshot();
    assert!(lag.count > 0, "stage 0 must have sealed at least once");
    assert!(lag.max > 0.0, "lag quantiles must be non-zero");
    assert!(lag.min >= 0.0 && lag.p50 <= lag.p99 && lag.p99 <= lag.max);

    // The journal saw routing, sealing, and exchange traffic.
    let journal = telem.journal();
    assert!(journal.recorded() > 0);
    let events = journal.all();
    assert!(events
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::ShardRouted { stage: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::WindowSealed { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::ExchangeForwarded { stage: 1, .. })));

    // The registry reads the same cells the session bumped.
    let snap = registry.snapshot();
    let pushed = snap
        .iter()
        .find(|m| m.family == "engine_tuples_pushed_total")
        .expect("adopted family");
    assert_eq!(pushed.value, MetricValue::Counter(n_total));
    let routed_via_registry: u64 = snap
        .iter()
        .filter(|m| {
            m.family == "engine_shard_routed_tuples_total"
                && m.labels.iter().any(|(k, v)| k == "stage" && v == "0")
        })
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            other => panic!("routed must be a counter, got {other:?}"),
        })
        .sum();
    assert_eq!(routed_via_registry, readings.len() as u64);

    let text = registry.render_text();
    assert!(text.contains("# TYPE engine_tuples_pushed_total counter"));
    assert!(text.contains("engine_watermark_lag{stage=\"0\",quantile=\"0.5\"}"));
    assert!(text.contains("engine_op_tuples_in_total{op=\"select\""));
}

#[test]
fn single_pipeline_session_telemetry_reconciles_without_perturbation() {
    let inputs = q1_inputs();
    let (mut g, sink) = q1_graph();
    let reference = canonical(
        &g.run_batched(vec![("in".into(), 0, inputs.clone())], 64)
            .unwrap()[&sink],
    );

    let exec = ShardedExecutor::new(1).with_batch_size(64);
    let mut session = exec.session(|| q1_graph().0).unwrap();
    let registry = MetricsRegistry::new();
    session.bind_registry(&registry);
    let telem = session.telemetry().clone();
    push_feed(&mut session, vec![("in".into(), 0, inputs.clone())], 64);
    // A serving driver seals incrementally; mid-stream seals must not
    // change what finish() ultimately emits.
    session.advance_watermark(3_500).unwrap();
    let out = session.finish().unwrap();
    assert_eq!(reference, canonical(&out[&sink]));

    assert_eq!(telem.tuples_pushed.get(), inputs.len() as u64);
    assert_eq!(telem.routed(0, 0).get(), inputs.len() as u64);
    let lag = telem.watermark_lag(0).snapshot();
    assert!(lag.count > 0 && lag.max > 0.0);
    assert!(telem
        .journal()
        .all()
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::BatchPumped { .. })));
}

#[test]
fn threaded_executor_surfaces_operator_panics() {
    let (g, _) = panic_graph(250);
    let exec = ThreadedExecutor::new(16).with_batch_size(8);
    let err = exec
        .run(g, vec![("in".into(), 0, panic_inputs())])
        .unwrap_err();
    match err {
        EngineError::OperatorPanicked(msg) => {
            assert!(msg.contains("panic-on"), "panicking operator named: {msg}");
            assert!(msg.contains("injected operator failure"), "msg: {msg}");
        }
        other => panic!("expected OperatorPanicked, got {other:?}"),
    }
}
