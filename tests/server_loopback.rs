//! Loopback integration suite for the ingest server: concurrent
//! publishers, streaming subscribers, EOS semantics, typed failure
//! paths, and exact equivalence with the in-process batched engine.
//!
//! The headline test drives a Q1-style query (probabilistic select →
//! project → tumbling group-by SUM) with three concurrent publisher
//! clients pushing interleaved slices over TCP and asserts the
//! subscriber's streamed results are exactly equal — values,
//! timestamps, existence probabilities, lineage — to
//! `QueryGraph::run_batched` over the same merged input.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uncertain_streams::core::metrics::Metered;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::{NodeId, QueryGraph};
use uncertain_streams::core::schema::{DataType, Field, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::{Client, ClientError, ErrorCode, ServedQuery, Server, ServerError};

const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("tag", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

/// Unique-timestamp input stream (ts = index), so the merged arrival
/// order at the server is fully determined and matches the feed
/// `run_batched` sorts out of the same tuples.
fn inputs(n: usize) -> Vec<Tuple> {
    let s = schema();
    (0..n)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.25,
                    ))),
                ],
                i as u64,
            )
        })
        .collect()
}

/// The Q1-style graph: select(P(x > 2)) → project → 100ms tumbling
/// group-by SUM (CLT) → sink.
fn q1_graph() -> (QueryGraph, NodeId) {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let project = Project::new(vec![
        Derivation::Certain {
            out: Field::new("weight", DataType::Float),
            f: Box::new(|t: &Tuple| Value::Float(t.int("tag").unwrap() as f64 * 2.5)),
        },
        Derivation::Linear {
            input: "x".into(),
            a: 0.5,
            b: 1.0,
            out: "y".into(),
        },
    ]);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(100),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    );
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

/// Exact tuple fingerprint: timestamp, existence bits, lineage ids, and
/// the full `Debug` rendering of every value (lossless for floats —
/// Rust's `{:?}` prints the shortest roundtripping decimal).
fn fingerprint(t: &Tuple) -> String {
    format!(
        "ts={} ex={:016x} lin={:?} vals={:?}",
        t.ts,
        t.existence.to_bits(),
        t.lineage.ids(),
        t.values()
    )
}

#[test]
fn three_publishers_one_subscriber_match_run_batched() {
    let n = 1500;
    let all_inputs = inputs(n);

    // Reference: the in-process batched engine over the merged input.
    // Clones share lineage ids with the tuples sent over the wire, so
    // lineage equality is meaningful.
    let (mut ref_graph, sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all_inputs.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert!(!expected.is_empty(), "reference run must produce windows");

    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let addr = handle.addr();

    // Subscriber first (subscriptions stream results from subscribe
    // time onward), then all publishers join before anyone publishes,
    // so no publisher can reach EOS before the slowest connects.
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publishers: Vec<Client> = (0..3).map(|_| Client::publisher(addr).unwrap()).collect();

    // Interleaved slices: publisher p owns tuples with index % 3 == p,
    // shipped concurrently in many small ts-ordered chunks.
    let threads: Vec<_> = publishers
        .drain(..)
        .enumerate()
        .map(|(p, mut client)| {
            let slice: Vec<Tuple> = all_inputs.iter().skip(p).step_by(3).cloned().collect();
            std::thread::spawn(move || {
                for chunk in slice.chunks(37) {
                    let accepted = client.publish("in", 0, chunk).unwrap();
                    assert_eq!(accepted, chunk.len());
                }
                client.finish().unwrap();
            })
        })
        .collect();

    let collected = subscriber.collect_until_eos().unwrap();
    for t in threads {
        t.join().unwrap();
    }
    assert!(handle.is_finished(), "EOS must mark the query finished");

    assert_eq!(collected.len(), 1, "one sink");
    let (sink_idx, received) = &collected[0];
    assert_eq!(*sink_idx, sink.index());
    assert_eq!(received.len(), expected.len());
    for (got, want) in received.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean run records no errors: {errors:?}");
}

#[test]
fn one_connection_can_publish_and_subscribe_at_once() {
    // A single duplex connection: subscribe, then keep publishing and
    // finish on the same socket while results stream back interleaved
    // with the acks.
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let mut client = Client::publisher(handle.addr()).unwrap();
    client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    client.subscribe().unwrap();

    let all = inputs(600);
    for chunk in all.chunks(100) {
        client.publish("in", 0, chunk).unwrap();
    }
    client.finish().unwrap();
    let collected = client.collect_until_eos().unwrap();
    assert_eq!(collected.len(), 1);

    let (mut ref_graph, sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert_eq!(collected[0].1.len(), expected.len());
    for (got, want) in collected[0].1.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }
    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean duplex run: {errors:?}");
}

#[test]
fn equal_timestamps_across_publishers_merge_by_connection_id() {
    // Two publishers racing tuples with IDENTICAL timestamps: the merge
    // must order ties by connection id, not by arrival — publisher 2's
    // ts=5 tuples may not overtake a ts=5 tuple publisher 1 can still
    // send. Sequenced publishes make the arrival order adversarial.
    let marked = |marker: i64, ts: u64| {
        let s = Schema::builder().field("m", DataType::Int).build();
        Tuple::new(s, vec![Value::Int(marker)], ts)
    };
    let mk_graph = || {
        let mut g = QueryGraph::new();
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.source("in", sink);
        g.sink(sink);
        g
    };
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(mk_graph())).unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut p1 = Client::publisher(addr).unwrap();
    p1.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut p2 = Client::publisher(addr).unwrap();
    p2.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // Arrival order: p1 [ts5], p2 [ts5, ts5], p1 [ts5] — yet the
    // canonical (ts, connection id) order puts both p1 tuples first.
    p1.publish("in", 0, &[marked(11, 5)]).unwrap();
    p2.publish("in", 0, &[marked(21, 5), marked(22, 5)])
        .unwrap();
    p1.publish("in", 0, &[marked(12, 5)]).unwrap();
    p1.finish().unwrap();
    p2.finish().unwrap();

    let collected = subscriber.collect_until_eos().unwrap();
    let markers: Vec<i64> = collected[0].1.iter().map(|t| t.int("m").unwrap()).collect();
    assert_eq!(
        markers,
        vec![11, 12, 21, 22],
        "ties must order by connection id"
    );
    handle.shutdown();
}

#[test]
fn out_of_range_port_and_publish_after_finish_are_typed_errors() {
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // The Q1 entry (select) has one input port: port 1 must be rejected
    // before it can trip an operator assert on the engine thread.
    match publisher.publish("in", 1, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected Protocol error for bad port, got {other:?}"),
    }

    publisher.publish("in", 0, &inputs(20)).unwrap();
    publisher.finish().unwrap();
    // Publishing again on a finished connection is a protocol error —
    // silently merging it behind the released watermark would break the
    // deterministic-merge guarantee.
    match publisher.publish("in", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => {
            assert!(code == ErrorCode::Protocol || code == ErrorCode::Finished);
        }
        other => panic!("expected typed error after finish, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn operator_panic_on_remote_input_is_contained() {
    // Publish tuples that survive the selection (they carry "x") but
    // lack the fields the projection's closure unwraps ("tag"): the
    // closure panics on the engine thread. The engine must contain it —
    // subscribers get Eos (no hang), the handle records a typed
    // QueryPanicked error, and later publishes get typed rejections.
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let mut subscriber = Client::subscriber(handle.addr()).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let bad_schema = Schema::builder().field("x", DataType::Uncertain).build();
    let bad: Vec<Tuple> = (0..8)
        .map(|i| {
            Tuple::new(
                bad_schema.clone(),
                vec![Value::from(Updf::Parametric(Dist::gaussian(5.0, 1.0)))],
                i as u64,
            )
        })
        .collect();
    publisher.publish("in", 0, &bad).unwrap();

    // Subscriber must be released with Eos, not left hanging.
    let collected = subscriber.collect_until_eos().unwrap();
    assert!(collected.is_empty() || collected[0].1.is_empty());

    // The dead query rejects further publishes with a typed error.
    let mut late = Client::publisher(handle.addr()).unwrap();
    late.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match late.publish("in", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Finished),
        other => panic!("expected Finished error from dead query, got {other:?}"),
    }

    let errors = handle.shutdown();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ServerError::QueryPanicked { .. })),
        "expected a QueryPanicked record, got {errors:?}"
    );
}

#[test]
fn late_publish_after_eos_is_typed_error() {
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let addr = handle.addr();

    let mut publisher = Client::publisher(addr).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    publisher.publish("in", 0, &inputs(50)).unwrap();
    publisher.finish().unwrap();

    // EOS is asynchronous; wait for the engine to flush.
    for _ in 0..200 {
        if handle.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.is_finished());

    // The existing connection and a brand-new one both get a typed
    // Finished error, not a hang or a panic.
    match publisher.publish("in", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Finished),
        other => panic!("expected Finished error, got {other:?}"),
    }
    let mut late = Client::publisher(addr).expect("hello still answered");
    late.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match late.publish("in", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Finished),
        other => panic!("expected Finished error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn unknown_source_is_typed_error() {
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match publisher.publish("no-such-stream", 0, &inputs(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSource),
        other => panic!("expected UnknownSource error, got {other:?}"),
    }
    // The connection survives a rejected publish.
    publisher.publish("in", 0, &inputs(10)).unwrap();
    publisher.finish().unwrap();
    handle.shutdown();
}

#[test]
fn mid_stream_disconnect_is_typed_error_not_a_hang() {
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut steady = Client::publisher(addr).unwrap();
    steady.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut flaky = Client::publisher(addr).unwrap();
    flaky.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let all = inputs(600);
    flaky.publish("in", 0, &all[0..100]).unwrap();
    drop(flaky); // vanish mid-stream, no Finish

    steady.publish("in", 0, &all[100..600]).unwrap();
    steady.finish().unwrap();

    // EOS still arrives (the aborted publisher must not wedge the
    // watermark merge), and the abort surfaces as a typed error.
    let collected = subscriber.collect_until_eos().unwrap();
    assert!(!collected.is_empty(), "results still flow after the abort");

    let errors = handle.shutdown();
    assert!(
        errors.iter().any(|e| matches!(
            e,
            ServerError::ClientDisconnected {
                role: "publisher",
                ..
            }
        )),
        "expected a ClientDisconnected record, got {errors:?}"
    );
}

#[test]
fn malformed_frame_gets_error_response_and_is_recorded() {
    use uncertain_streams::server::{Response, WIRE_VERSION};

    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(q1_graph().0)).unwrap();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // A well-framed Publish whose payload is garbage.
    use std::io::Write;
    let payload = [0xFFu8, 0xEE, 0xDD, 0xCC];
    let mut frame = Vec::new();
    frame.extend_from_slice(b"US");
    frame.push(WIRE_VERSION);
    frame.push(0x02); // Publish
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    raw.write_all(&frame).unwrap();

    match uncertain_streams::server::protocol::read_response(&mut raw).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error frame, got {other:?}"),
    }
    let errors = handle.shutdown();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ServerError::Malformed { .. })),
        "expected a Malformed record, got {errors:?}"
    );
}

#[test]
fn stats_serves_metrics_snapshots() {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let (metered, metrics) = Metered::new(select);
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(metered));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);

    let served = ServedQuery::new(g).with_metric("select", metrics);
    let handle = Server::serve("127.0.0.1:0", served).unwrap();

    let mut publisher = Client::publisher(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    publisher.publish("in", 0, &inputs(200)).unwrap();
    publisher.finish().unwrap();

    for _ in 0..200 {
        if handle.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = publisher.stats().unwrap();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].name, "select");
    assert_eq!(stats[0].tuples_in, 200);
    assert!(stats[0].calls > 0);
    handle.shutdown();
}
