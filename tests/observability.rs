//! Observability suite: causal batch tracing, EXPLAIN ANALYZE, the
//! health watchdog, and their wire frames.
//!
//! The headline guarantees:
//!
//! - **Non-perturbation.** A sharded run with 1-in-4 trace sampling is
//!   byte-identical to `run_batched` and to the same run with sampling
//!   off — tracing reads clocks and records spans, it never touches
//!   routing or data.
//! - **Causality.** Retained spans form parent-linked trees rooted at
//!   `Pump`, and the *structure* (kinds, stages, shards, tuple counts,
//!   trace ids) is reproducible run over run; only the timings vary.
//! - **Reconciliation.** `PlanReport` numbers equal the session's own
//!   telemetry cells; the wire-served `Explain`/`Health`/`JournalTail`
//!   frames agree with `StatsV2` counters, over loopback and through a
//!   seeded chaos storm.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uncertain_streams::core::batch::Batch;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::{NodeId, QueryGraph};
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::runtime::session::ShardedSession;
use uncertain_streams::runtime::{PlanReport, ShardedExecutor};
use uncertain_streams::server::protocol::{self, Request, Response};
use uncertain_streams::server::{ChaosProxy, Client, ServedQuery, Server, ServerConfig, Severity};
use uncertain_streams::telemetry::{
    HealthConfig, HealthStatus, MetricSnapshot, MetricValue, Span, SpanKind, TraceDetail,
};

const READ_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

/// Two keyed anchors on different keys: shards as 2 stages joined by an
/// exchange, so traces can cover pump → route → exchange-forward → seal
/// → emit in one run.
fn staged_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let agg1 = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::ExactParametric,
        }],
    )));
    let agg2 = g.add(Box::new(
        WindowedAggregate::new(
            WindowKind::Tumbling(4_000),
            |t: &Tuple| GroupKey::from_value(t.get("n_tuples").unwrap()).unwrap(),
            vec![AggSpec {
                field: "total".into(),
                func: AggFunc::Sum,
                out: "grand".into(),
                strategy: Strategy::ExactParametric,
            }],
        )
        .named("reagg"),
    ));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(agg1, agg2, 0).unwrap();
    g.connect(agg2, sink, 0).unwrap();
    g.source("in", agg1);
    g.sink(sink);
    (g, sink)
}

fn staged_inputs() -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    (0..700u64)
        .map(|i| {
            let mean = (i % 13) as f64 - 4.0;
            let mut t = Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 7) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                i * 10,
            );
            t.existence = 1.0 - (i % 5) as f64 * 0.05;
            t
        })
        .collect()
}

/// Bit-exact row rendering: every distribution parameter, existence
/// bits, and lineage id in play.
fn rendered(tuples: &[Tuple]) -> Vec<String> {
    let mut rows: Vec<String> = tuples
        .iter()
        .map(|t| {
            format!(
                "{:?}|{:x}|{:?}",
                t.values(),
                t.existence.to_bits(),
                t.lineage
            )
        })
        .collect();
    rows.sort();
    rows
}

/// Drive a session over a ts-ordered feed the way `ShardedExecutor::run`
/// does (coalescing per-(node, port) batches).
fn push_feed(session: &mut ShardedSession, inputs: Vec<(String, usize, Vec<Tuple>)>, bs: usize) {
    let feed = session.ordered_feed(inputs).unwrap();
    let mut cur: Option<(NodeId, usize, Batch)> = None;
    for (_, node, port, tuple) in feed {
        match &mut cur {
            Some((n, p, b)) if *n == node && *p == port && b.len() < bs => b.push(tuple),
            slot => {
                if let Some((n, p, b)) = slot.take() {
                    session.push_batch(n, p, b).unwrap();
                }
                *slot = Some((node, port, Batch::one(tuple)));
            }
        }
    }
    if let Some((n, p, b)) = cur {
        session.push_batch(n, p, b).unwrap();
    }
}

/// Run `staged_graph` through a sharded session with the given trace
/// sampling, returning the rendered sink rows and the retained spans.
/// Takes the inputs (cloned from one allocation) so lineage ids are
/// comparable across runs.
fn traced_run(
    inputs: &[Tuple],
    shards: usize,
    every: u64,
    seed: u64,
) -> (Vec<String>, Vec<Span>, u64) {
    let exec = ShardedExecutor::new(shards)
        .with_workers(2)
        .with_batch_size(48);
    let mut session = exec.session(|| staged_graph().0).unwrap();
    session.telemetry().traces().configure(every, seed);
    let (_, sink) = staged_graph();
    push_feed(&mut session, vec![("in".into(), 0, inputs.to_vec())], 48);
    let telem = session.telemetry().clone();
    let out = session.finish().unwrap();
    (
        rendered(&out[&sink]),
        telem.traces().all(),
        telem.traces().sampled(),
    )
}

// ---------------------------------------------------------------------
// Non-perturbation and span structure
// ---------------------------------------------------------------------

#[test]
fn traced_run_is_byte_identical_to_run_batched_and_untraced() {
    let inputs = staged_inputs();
    let (mut g, sink) = staged_graph();
    let reference = rendered(
        &g.run_batched(vec![("in".into(), 0, inputs.clone())], 64)
            .unwrap()[&sink],
    );
    assert!(!reference.is_empty());

    let (untraced, spans_off, sampled_off) = traced_run(&inputs, 4, 0, 0);
    assert_eq!(reference, untraced, "untraced sharded run diverged");
    assert!(spans_off.is_empty(), "sampling off must record no spans");
    assert_eq!(sampled_off, 0);

    let (traced, spans_on, sampled_on) = traced_run(&inputs, 4, 4, 0xC1DA);
    assert_eq!(
        reference, traced,
        "1-in-4 trace sampling must not change one output byte"
    );
    assert!(sampled_on > 0, "1-in-4 over many batches elects some");
    assert!(!spans_on.is_empty());
}

#[test]
fn spans_form_parent_linked_trees_covering_the_pipeline() {
    let (_, spans, sampled) = traced_run(&staged_inputs(), 4, 4, 7);
    assert!(sampled > 0);

    // Every lifecycle hop appears (two stages → exchange forwards too).
    for kind in [
        SpanKind::Pump,
        SpanKind::Route,
        SpanKind::ExchangeForward,
        SpanKind::Seal,
        SpanKind::Emit,
    ] {
        assert!(
            spans.iter().any(|s| s.kind == kind),
            "no {kind:?} span in {} spans",
            spans.len()
        );
    }

    for s in &spans {
        assert_ne!(s.trace, 0, "trace ids are nonzero");
        match s.kind {
            SpanKind::Pump => assert_eq!(s.parent, None, "Pump is the root"),
            _ => {
                let parent = s.parent.expect("non-root spans have parents");
                assert!(parent < s.seq, "parents precede children");
                // The parent is a retained span of the same trace.
                let p = spans
                    .iter()
                    .find(|c| c.seq == parent)
                    .expect("parent span retained");
                assert_eq!(p.trace, s.trace, "parent links stay inside one trace");
            }
        }
    }

    // Seal spans cover stage 1 as well — the exchange stage seals too.
    assert!(spans
        .iter()
        .any(|s| s.kind == SpanKind::Seal && s.stage == 1));
}

/// A span with its timing erased: everything that must reproduce.
type SpanShape = (u64, u64, Option<u64>, SpanKind, usize, usize, usize);

#[test]
fn trace_structure_is_deterministic_run_over_run() {
    let shape = |spans: &[Span]| -> Vec<SpanShape> {
        spans
            .iter()
            .map(|s| (s.seq, s.trace, s.parent, s.kind, s.stage, s.shard, s.tuples))
            .collect()
    };
    let inputs = staged_inputs();
    let (rows_a, spans_a, sampled_a) = traced_run(&inputs, 4, 4, 99);
    let (rows_b, spans_b, sampled_b) = traced_run(&inputs, 4, 4, 99);
    assert_eq!(rows_a, rows_b);
    assert_eq!(sampled_a, sampled_b, "the sampler elects the same batches");
    assert_eq!(
        shape(&spans_a),
        shape(&spans_b),
        "span structure is reproducible; only timings may differ"
    );
}

/// The full-price equality check at scale — release-gated (the CI
/// release step runs it) so debug runs stay fast.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-gated: run via the CI release step"
)]
fn traced_run_stays_byte_identical_at_scale() {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    let inputs: Vec<Tuple> = (0..20_000u64)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 23) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian((i % 11) as f64, 0.5))),
                ],
                i,
            )
        })
        .collect();
    let (mut g, sink) = staged_graph();
    let reference = rendered(
        &g.run_batched(vec![("in".into(), 0, inputs.clone())], 256)
            .unwrap()[&sink],
    );

    for (every, seed) in [(0u64, 0u64), (4, 0xBEEF)] {
        let exec = ShardedExecutor::new(8).with_workers(2).with_batch_size(128);
        let mut session = exec.session(|| staged_graph().0).unwrap();
        session.telemetry().traces().configure(every, seed);
        push_feed(&mut session, vec![("in".into(), 0, inputs.clone())], 128);
        let out = session.finish().unwrap();
        assert_eq!(
            reference,
            rendered(&out[&sink]),
            "divergence at sampling every={every}"
        );
    }
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------

#[test]
fn plan_report_reconciles_with_the_session_telemetry() {
    let exec = ShardedExecutor::new(4).with_workers(2).with_batch_size(48);
    let mut session = exec.session(|| staged_graph().0).unwrap();
    session.telemetry().traces().configure(4, 5);
    let inputs = staged_inputs();
    push_feed(&mut session, vec![("in".into(), 0, inputs.clone())], 48);
    let telem = session.telemetry().clone();
    session.finish().unwrap();

    let report = PlanReport::assemble(&telem);
    assert_eq!(report.stages.len(), 2, "agg → reagg stages");
    assert_eq!(report.batches_pushed, telem.batches_pushed.get());
    assert_eq!(report.tuples_pushed, inputs.len() as u64);
    assert_eq!(report.spans_recorded, telem.traces().recorded());
    assert_eq!(report.traces_sampled, telem.traces().sampled());
    assert!(report.traces_sampled > 0);

    // Stage 0 routing covers the whole feed; skew is a sane ratio.
    let s0 = &report.stages[0];
    assert_eq!(s0.routed.len(), 4);
    assert_eq!(s0.routed.iter().sum::<u64>(), inputs.len() as u64);
    assert!(s0.skew >= 1.0 && s0.skew <= 4.0, "skew {}", s0.skew);
    assert_eq!(s0.exchange_forwarded, 0, "stage 0 has no upstream exchange");
    assert!(!s0.ops.is_empty(), "per-operator counters present");
    let agg_in: u64 = s0
        .ops
        .iter()
        .filter(|o| o.op == "aggregate")
        .map(|o| o.tuples_in)
        .sum();
    assert_eq!(agg_in, inputs.len() as u64);

    // Stage 1 saw the exchange and sealed; merged lag covers both.
    let s1 = &report.stages[1];
    assert!(s1.exchange_forwarded > 0);
    assert!(s0.lag.count > 0 && s1.lag.count > 0);
    assert_eq!(report.lag_merged.count, s0.lag.count + s1.lag.count);
    assert_eq!(report.watermark_sealed, telem.watermark_sealed.get());

    // Pipelined delivery (on by default) ticked eager forward rounds
    // into stage 1; the counters reconcile exactly against the live
    // cells, and the run-ahead depth gauge reset at the finish barrier.
    assert_eq!(s0.eager_forwards, 0, "stage 0 has no upstream exchange");
    assert_eq!(s0.interval_depth, 0);
    assert!(s1.eager_forwards > 0, "eager delivery ran ahead of drains");
    assert_eq!(s1.eager_forwards, telem.eager_forwards(1).get());
    assert_eq!(s1.interval_depth, telem.interval_depth(1).get());
    assert_eq!(s1.interval_depth, 0, "finish barrier resets the depth");

    // The rendered tree carries the topology and the live annotations.
    let text = report.render();
    assert!(text.contains("stage 0"), "topology present:\n{text}");
    assert!(text.contains("analyze: stage 0: routed ["));
    assert!(text.contains("eager rounds"), "eager counters rendered:\n{text}");
    assert!(text.contains("sampled batches"));
    assert!(text.contains("aggregate#"));
}

// ---------------------------------------------------------------------
// Loopback wire surface
// ---------------------------------------------------------------------

fn wire_schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

fn wire_inputs(n: usize) -> Vec<Tuple> {
    let s = wire_schema();
    (0..n)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 16) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian((i % 10) as f64, 1.0))),
                ],
                i as u64,
            )
        })
        .collect()
}

fn wire_graph() -> QueryGraph {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let project = Project::new(vec![Derivation::Linear {
        input: "x".into(),
        a: 0.5,
        b: 1.0,
        out: "y".into(),
    }]);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(100),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    );
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    g
}

fn counter_total(metrics: &[MetricSnapshot], family: &str) -> u64 {
    metrics
        .iter()
        .filter(|m| m.family == family)
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            other => panic!("{family} must be a counter, got {other:?}"),
        })
        .sum()
}

#[test]
fn explain_health_and_journal_tail_roundtrip_over_loopback() {
    let n = 1500;
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::sharded(wire_graph, 4),
        ServerConfig {
            trace_sample_every: 4,
            trace_seed: 11,
            health_interval: Duration::from_millis(25),
            // A hash may land several of the 16 groups on one shard;
            // this test is about the wire, not balance.
            health: HealthConfig {
                skew_ratio: 64.0,
                ..HealthConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publisher = Client::publisher(addr).unwrap();
    for chunk in wire_inputs(n).chunks(64) {
        assert_eq!(publisher.publish("in", 0, chunk).unwrap(), chunk.len());
    }
    publisher.finish().unwrap();
    let collected = subscriber.collect_until_eos().unwrap();
    assert!(!collected.is_empty() && !collected[0].1.is_empty());

    // EXPLAIN reconciles with StatsV2 — two views of the same cells.
    let (metrics, _) = subscriber.stats_v2().unwrap();
    let report = subscriber.explain().unwrap();
    assert_eq!(report.tuples_pushed, n as u64);
    assert_eq!(
        report.tuples_pushed,
        counter_total(&metrics, "engine_tuples_pushed_total")
    );
    assert_eq!(
        report.batches_pushed,
        counter_total(&metrics, "engine_batches_pushed_total")
    );
    assert_eq!(report.stages.len(), 1, "one keyed stage");
    assert_eq!(
        report.stages[0].routed.iter().sum::<u64>(),
        counter_total(&metrics, "engine_shard_routed_tuples_total")
    );
    assert!(report.traces_sampled > 0, "1-in-4 sampling was live");
    assert!(report.spans_recorded > 0);
    assert!(
        report
            .topology
            .contains("entry `in` -> keyed on `aggregate`"),
        "served topology present: {}",
        report.topology
    );
    assert!(report.render().contains("analyze: stage 0"));
    // The in-process accessor agrees (the engine is quiet post-EOS).
    let local = handle.explain();
    assert_eq!(local.tuples_pushed, report.tuples_pushed);
    assert_eq!(local.stages[0].routed, report.stages[0].routed);

    // Health: the defaults see a finished, drained, balanced server.
    let health = subscriber.health().unwrap();
    assert_eq!(health.status, HealthStatus::Healthy, "checks: {health:?}");
    assert!(health.evaluations >= 1);
    assert!(health.checks.is_empty(), "no findings: {:?}", health.checks);
    assert_eq!(handle.health().status, HealthStatus::Healthy);

    // JournalTail: newest events, oldest first, gap-free, and the
    // lifetime count at least covers what we got.
    let (recorded, events) = subscriber.journal_tail(64).unwrap();
    assert!(!events.is_empty());
    assert!(recorded >= events.len() as u64);
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "tail is seq-ordered");
    }
    assert!(events.iter().any(|e| matches!(
        e.detail,
        TraceDetail::WindowSealed { .. } | TraceDetail::ShardRouted { .. }
    )));

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean run: {errors:?}");
}

#[test]
fn lag_slo_breach_reports_critical_and_journals_the_transition() {
    // An SLO of 1 event-time unit: any real tumbling window breaches it
    // at 2x immediately, so the watchdog must walk Healthy → Critical
    // and journal the transition.
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::sharded(wire_graph, 2),
        ServerConfig {
            health_interval: Duration::from_millis(10),
            health: HealthConfig {
                lag_slo_p99: 1.0,
                skew_ratio: 64.0,
                ..HealthConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publisher = Client::publisher(addr).unwrap();
    for chunk in wire_inputs(800).chunks(64) {
        assert_eq!(publisher.publish("in", 0, chunk).unwrap(), chunk.len());
    }
    publisher.finish().unwrap();
    subscriber.collect_until_eos().unwrap();

    let health = subscriber.health().unwrap();
    assert_eq!(health.status, HealthStatus::Critical, "{health:?}");
    assert!(health
        .checks
        .iter()
        .any(|c| c.name == "lag_slo" && c.status == HealthStatus::Critical));

    // The transition (not every evaluation) landed in the journal, and
    // the wire tail carries it with both endpoint statuses intact.
    let (_, events) = subscriber.journal_tail(256).unwrap();
    let transitions: Vec<_> = events
        .iter()
        .filter_map(|e| match e.detail {
            TraceDetail::HealthChanged { from, to } => Some((from, to)),
            _ => None,
        })
        .collect();
    assert!(
        transitions.contains(&(HealthStatus::Healthy, HealthStatus::Critical)),
        "transitions: {transitions:?}"
    );

    handle.shutdown();
}

// ---------------------------------------------------------------------
// Chaos: the observability frames under a seeded storm
// ---------------------------------------------------------------------

/// Ask for one observability frame through a chaotic connection,
/// retrying with fresh connections until a clean window lets the
/// request through.
fn ask_through_chaos(proxy: &ChaosProxy, req: &Request) -> Response {
    for _ in 0..100 {
        let Ok(mut stream) = TcpStream::connect(proxy.addr()) else {
            continue;
        };
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
        if protocol::write_request(&mut stream, req).is_err() {
            continue;
        }
        if let Ok(resp) = protocol::read_response(&mut stream) {
            return resp;
        }
    }
    panic!("chaos never let a {req:?} through in 100 attempts");
}

#[test]
fn observability_frames_survive_a_seeded_chaos_storm() {
    let n = 600;
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::sharded(wire_graph, 4),
        ServerConfig {
            trace_sample_every: 4,
            trace_seed: 3,
            health: HealthConfig {
                skew_ratio: 64.0,
                ..HealthConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A clean publisher finishes the run first; the storm then batters
    // only the observability plane.
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut publisher = Client::publisher(addr).unwrap();
    for chunk in wire_inputs(n).chunks(48) {
        assert_eq!(publisher.publish("in", 0, chunk).unwrap(), chunk.len());
    }
    publisher.finish().unwrap();
    subscriber.collect_until_eos().unwrap();

    let proxy = ChaosProxy::seeded(addr, 0xD1CE).unwrap();
    let explained = match ask_through_chaos(&proxy, &Request::Explain) {
        Response::Explain(r) => r,
        other => panic!("expected Explain, got {other:?}"),
    };
    let health = match ask_through_chaos(&proxy, &Request::Health) {
        Response::Health(r) => r,
        other => panic!("expected Health, got {other:?}"),
    };
    let (recorded, events) = match ask_through_chaos(&proxy, &Request::JournalTail { n: 32 }) {
        Response::JournalTail { recorded, events } => (recorded, events),
        other => panic!("expected JournalTail, got {other:?}"),
    };
    proxy.shutdown();

    // Reports fetched through the storm reconcile against the registry
    // over a direct connection — chaos may delay them, never skew them.
    let (metrics, _) = subscriber.stats_v2().unwrap();
    assert_eq!(explained.tuples_pushed, n as u64);
    assert_eq!(
        explained.batches_pushed,
        counter_total(&metrics, "engine_batches_pushed_total")
    );
    assert!(explained.traces_sampled > 0);
    assert_eq!(health.status, HealthStatus::Healthy, "{health:?}");
    assert!(recorded >= events.len() as u64);
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }

    let errors = handle.shutdown();
    // Torn observability connections are at most transient scars.
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "chaos left non-transient scars: {errors:?}"
    );
}
