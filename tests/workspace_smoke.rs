//! Workspace smoke test: the umbrella crate's re-exports resolve, and a
//! minimal end-to-end query — select → project → windowed aggregate over
//! uncertain tuples — yields a finite, normalized result distribution.

use std::sync::Arc;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::tuple::Tuple;
use uncertain_streams::core::updf::Updf;
use uncertain_streams::core::value::{GroupKey, Value};
use uncertain_streams::prob::dist::Dist;

/// Every re-exported workspace crate is reachable under its umbrella
/// alias and produces a sane value.
#[test]
fn umbrella_reexports_resolve() {
    // prob
    let g = uncertain_streams::prob::dist::Dist::gaussian(0.0, 1.0);
    assert!((g.cdf(0.0) - 0.5).abs() < 1e-12);
    // ts
    let acv = uncertain_streams::ts::acf::autocovariances(&[1.0, -1.0, 1.0, -1.0], 1);
    assert!(acv[0] > 0.0);
    // rfid
    let world = uncertain_streams::rfid::WorldConfig::default();
    assert!(world.num_objects > 0);
    // inference
    let motion = uncertain_streams::inference::MotionModel {
        diffusion: 0.1,
        move_prob: 0.0,
        shelf_xy: vec![],
        placement_jitter: 0.1,
    };
    assert_eq!(motion.shelf_xy.len(), 0);
    // radar
    let radar = uncertain_streams::radar::RadarParams::default();
    assert!(radar.prf > 0.0);
}

/// select(P(temp > 50) ≥ 0.05) → project(°C → °F) → tumbling-window AVG:
/// the result distribution must be finite, normalized, and land where
/// the inputs put it.
#[test]
fn minimal_end_to_end_query() {
    let schema: Arc<Schema> = Schema::builder()
        .field("id", DataType::Int)
        .field("temp", DataType::Uncertain)
        .build();

    // 20 tuples, means 54..73 °C, sd 2 — all comfortably above 50 °C.
    let tuples: Vec<Tuple> = (0..20)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::from(i as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(54.0 + i as f64, 2.0))),
                ],
                i as u64,
            )
        })
        .collect();

    let mut select = Select::new(Predicate::UncertainAbove("temp".into(), 50.0), 0.05);
    let mut project = Project::new(vec![Derivation::Linear {
        input: "temp".into(),
        a: 1.8,
        b: 32.0,
        out: "temp_f".into(),
    }]);
    let mut agg = WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |_t: &Tuple| GroupKey::Unit,
        vec![AggSpec {
            field: "temp_f".into(),
            func: AggFunc::Avg,
            out: "avg_f".into(),
            strategy: Strategy::Auto,
        }],
    );

    let mut survived = 0usize;
    for t in tuples {
        for s in select.process(0, t) {
            survived += 1;
            for p in project.process(0, s) {
                let out = agg.process(0, p);
                assert!(out.is_empty(), "window must close only at flush");
            }
        }
    }
    assert_eq!(survived, 20, "all tuples clear the 5% threshold");

    let mut results = agg.flush();
    assert_eq!(results.len(), 1, "single window, single group");
    let result = results.remove(0);
    let avg = result.updf("avg_f").expect("aggregate output present");

    // Finite, normalized result distribution.
    let mean = avg.mean();
    let var = avg.variance();
    assert!(mean.is_finite() && var.is_finite() && var > 0.0);
    assert!((avg.prob_in(mean - 60.0, mean + 60.0) - 1.0).abs() < 1e-6);
    let (lo, hi) = avg.confidence_interval(0.95);
    assert!(lo.is_finite() && hi.is_finite() && lo < mean && mean < hi);

    // Exact expectation: avg of 54..73 °C is 63.5 °C → 146.3 °F.
    let expect_f = 63.5 * 1.8 + 32.0;
    assert!(
        (mean - expect_f).abs() < 0.5,
        "mean {mean} vs expected {expect_f}"
    );
    // The result spread must sit between the naive iid floor
    // (1.8·2/√20 ≈ 0.8 °F) and a single input's spread (1.8·2 = 3.6 °F);
    // the engine adds membership uncertainty on top of the iid term, so
    // only the band is asserted.
    let sd = var.sqrt();
    assert!((0.5..3.6).contains(&sd), "implausible result sd {sd}");
}
