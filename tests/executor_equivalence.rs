//! The threaded (crossbeam-channel) executor must produce the same
//! results as single-threaded push execution for a select → aggregate
//! pipeline — the Fig. 2 architecture at stream speed.

use std::collections::HashMap;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, NodeId, QueryGraph, ThreadedExecutor, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;

fn build_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(
        Select::new(Predicate::UncertainAbove("x".into(), 0.0), 0.1).without_conditioning(),
    ));
    let agg = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

fn inputs() -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    (0..500u64)
        .map(|i| {
            let mean = (i % 13) as f64 - 4.0; // some tuples mostly below 0
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 3) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                i * 10,
            )
        })
        .collect()
}

/// Canonical form of sink output for comparison.
fn summarize(tuples: &[Tuple]) -> Vec<(String, u64, i64, i64)> {
    let mut rows: Vec<(String, u64, i64, i64)> = tuples
        .iter()
        .map(|t| {
            let total = t.updf("total").unwrap();
            (
                t.str("group").unwrap().to_string(),
                t.get("window_start").unwrap().as_time().unwrap(),
                t.int("n_tuples").unwrap(),
                (total.mean() * 1e6).round() as i64,
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn threaded_executor_matches_single_threaded() {
    let (mut g1, sink1) = build_graph();
    let single: HashMap<NodeId, Vec<Tuple>> = g1.run(vec![("in".into(), 0, inputs())]).unwrap();

    let (g2, sink2) = build_graph();
    let exec = ThreadedExecutor::default();
    let threaded = exec.run(g2, vec![("in".into(), 0, inputs())]).unwrap();

    let a = summarize(&single[&sink1]);
    let b = summarize(&threaded[&sink2]);
    assert!(!a.is_empty(), "pipeline produced output");
    assert_eq!(a, b, "threaded and single-threaded outputs must match");
}

#[test]
fn threaded_executor_is_repeatable() {
    let run = || {
        let (g, sink) = build_graph();
        let exec = ThreadedExecutor::new(64);
        let out = exec.run(g, vec![("in".into(), 0, inputs())]).unwrap();
        summarize(&out[&sink])
    };
    assert_eq!(run(), run());
}
