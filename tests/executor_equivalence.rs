//! The batched executors (single-threaded `run_batched` and the
//! crossbeam-channel `ThreadedExecutor`) must produce the same results
//! as single-threaded tuple-at-a-time push execution — the Fig. 2
//! architecture at stream speed, with identical semantics.

use std::collections::HashMap;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::join::{JoinCondition, WindowJoin};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, NodeId, QueryGraph, ThreadedExecutor, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;

fn build_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(
        Select::new(Predicate::UncertainAbove("x".into(), 0.0), 0.1).without_conditioning(),
    ));
    let agg = g.add(Box::new(WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "x".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

fn inputs() -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    (0..500u64)
        .map(|i| {
            let mean = (i % 13) as f64 - 4.0; // some tuples mostly below 0
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 3) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                i * 10,
            )
        })
        .collect()
}

/// Canonical form of sink output for comparison.
fn summarize(tuples: &[Tuple]) -> Vec<(String, u64, i64, i64)> {
    let mut rows: Vec<(String, u64, i64, i64)> = tuples
        .iter()
        .map(|t| {
            let total = t.updf("total").unwrap();
            (
                t.str("group").unwrap().to_string(),
                t.get("window_start").unwrap().as_time().unwrap(),
                t.int("n_tuples").unwrap(),
                (total.mean() * 1e6).round() as i64,
            )
        })
        .collect();
    rows.sort();
    rows
}

/// One sink row in full canonical form: group, window start, member
/// count, scaled mean, timestamp, scaled existence, lineage ids.
type CanonicalRow = (String, u64, i64, i64, u64, i64, Vec<u64>);

/// Full canonical form including timestamps, existence probabilities, and
/// lineage ids — the strict equivalence the batched engine must uphold.
fn canonical(tuples: &[Tuple]) -> Vec<CanonicalRow> {
    let mut rows: Vec<_> = tuples
        .iter()
        .map(|t| {
            let total = t.updf("total").unwrap();
            (
                t.str("group").unwrap().to_string(),
                t.get("window_start").unwrap().as_time().unwrap(),
                t.int("n_tuples").unwrap(),
                (total.mean() * 1e6).round() as i64,
                t.ts,
                (t.existence * 1e9).round() as i64,
                t.lineage.ids().to_vec(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn threaded_executor_matches_single_threaded() {
    let (mut g1, sink1) = build_graph();
    let single: HashMap<NodeId, Vec<Tuple>> = g1.run(vec![("in".into(), 0, inputs())]).unwrap();

    let (g2, sink2) = build_graph();
    let exec = ThreadedExecutor::default();
    let threaded = exec.run(g2, vec![("in".into(), 0, inputs())]).unwrap();

    let a = summarize(&single[&sink1]);
    let b = summarize(&threaded[&sink2]);
    assert!(!a.is_empty(), "pipeline produced output");
    assert_eq!(a, b, "threaded and single-threaded outputs must match");
}

#[test]
fn threaded_executor_is_repeatable() {
    let run = || {
        let (g, sink) = build_graph();
        let exec = ThreadedExecutor::new(64);
        let out = exec.run(g, vec![("in".into(), 0, inputs())]).unwrap();
        summarize(&out[&sink])
    };
    assert_eq!(run(), run());
}

/// Batched single-threaded execution must reproduce tuple-at-a-time
/// output *exactly*: same tuples, timestamps, existence probabilities,
/// and lineage, at every batch size. The same input tuples (cloned, so
/// lineage ids coincide) feed every run.
#[test]
fn batched_run_matches_tuple_at_a_time_exactly() {
    let shared_inputs = inputs();
    let (mut g1, sink1) = build_graph();
    let single = g1
        .run(vec![("in".into(), 0, shared_inputs.clone())])
        .unwrap();
    let reference = canonical(&single[&sink1]);
    assert!(!reference.is_empty());

    for bs in [1usize, 64, 1024] {
        let (mut g2, sink2) = build_graph();
        let batched = g2
            .run_batched(vec![("in".into(), 0, shared_inputs.clone())], bs)
            .unwrap();
        assert_eq!(
            reference,
            canonical(&batched[&sink2]),
            "batch size {bs} diverged from tuple-at-a-time"
        );
    }
}

/// The threaded executor ships batches over its channels; every batch
/// size must yield the same sink tuples (incl. existence and lineage).
#[test]
fn threaded_batch_sizes_match_tuple_at_a_time() {
    let shared_inputs = inputs();
    let (mut g1, sink1) = build_graph();
    let single = g1
        .run(vec![("in".into(), 0, shared_inputs.clone())])
        .unwrap();
    let reference = canonical(&single[&sink1]);

    for bs in [1usize, 64, 1024] {
        let (g2, sink2) = build_graph();
        let exec = ThreadedExecutor::new(256).with_batch_size(bs);
        let threaded = exec
            .run(g2, vec![("in".into(), 0, shared_inputs.clone())])
            .unwrap();
        assert_eq!(
            reference,
            canonical(&threaded[&sink2]),
            "threaded batch size {bs} diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Multi-port join fed by two driver sources.
// ---------------------------------------------------------------------

fn join_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let join = g.add(Box::new(WindowJoin::new(
        10_000,
        JoinCondition::BandUncertain {
            left_field: "x".into(),
            right_field: "x".into(),
            epsilon: 1.0,
        },
        0.05,
    )));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(join, sink, 0).unwrap();
    g.source("left", join);
    g.source("right", join);
    g.sink(sink);
    (g, sink)
}

/// Tuples arrive in bursts of 10 per side (`ts_shift` staggers the two
/// sides), so the merged feed contains genuine per-port runs and the
/// batched executors actually form multi-tuple join batches.
fn join_inputs(offset: f64, ts_shift: u64) -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("id", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    (0..60u64)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int(i as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 5) as f64 + offset,
                        0.5,
                    ))),
                ],
                (i / 10) * 1000 + ts_shift + (i % 10),
            )
        })
        .collect()
}

fn join_summary(tuples: &[Tuple]) -> Vec<(i64, i64, u64, i64)> {
    let mut rows: Vec<_> = tuples
        .iter()
        .map(|t| {
            (
                t.int("id").unwrap(),
                t.int("r_id").unwrap(),
                t.ts,
                (t.existence * 1e9).round() as i64,
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn threaded_join_two_driver_sources_matches_single_threaded() {
    let (left, right) = (join_inputs(0.0, 0), join_inputs(0.25, 500));
    let feeds = |l: &Vec<Tuple>, r: &Vec<Tuple>| {
        vec![
            ("left".to_string(), 0usize, l.clone()),
            ("right".to_string(), 1usize, r.clone()),
        ]
    };

    let (mut g1, sink1) = join_graph();
    let single = g1.run(feeds(&left, &right)).unwrap();
    let reference = join_summary(&single[&sink1]);
    assert!(!reference.is_empty(), "join produced matches");

    for bs in [1usize, 16, 512] {
        let (g2, sink2) = join_graph();
        let exec = ThreadedExecutor::new(128).with_batch_size(bs);
        let threaded = exec.run(g2, feeds(&left, &right)).unwrap();
        assert_eq!(
            reference,
            join_summary(&threaded[&sink2]),
            "two-source join, batch size {bs}"
        );
    }
}

// ---------------------------------------------------------------------
// EOS with fan-out > 1: one upstream feeding two flush-only aggregates.
// ---------------------------------------------------------------------

#[test]
fn threaded_eos_with_fanout_reaches_all_branches() {
    let schema = Schema::builder()
        .field("g", DataType::Int)
        .field("x", DataType::Uncertain)
        .build();
    let mk_agg = || {
        WindowedAggregate::new(
            // Window far larger than the data: emits only on flush, so
            // the result only appears if EOS propagates down both
            // fan-out branches.
            WindowKind::Tumbling(1_000_000),
            |_t: &Tuple| GroupKey::Unit,
            vec![AggSpec {
                field: "x".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::ExactParametric,
            }],
        )
    };
    let mut g = QueryGraph::new();
    let src = g.add(Box::new(Passthrough::new("src")));
    let agg1 = g.add(Box::new(mk_agg()));
    let agg2 = g.add(Box::new(mk_agg()));
    g.connect(src, agg1, 0).unwrap();
    g.connect(src, agg2, 0).unwrap();
    g.source("in", src);
    g.sink(agg1);
    g.sink(agg2);

    let tuples: Vec<Tuple> = (0..25u64)
        .map(|i| {
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int(1),
                    Value::from(Updf::Parametric(Dist::gaussian(2.0, 0.1))),
                ],
                i,
            )
        })
        .collect();

    let exec = ThreadedExecutor::new(32).with_batch_size(8);
    let out = exec.run(g, vec![("in".into(), 0, tuples)]).unwrap();
    for (label, node) in [("agg1", agg1), ("agg2", agg2)] {
        let results = &out[&node];
        assert_eq!(results.len(), 1, "{label} must flush exactly one window");
        assert!(
            (results[0].updf("total").unwrap().mean() - 50.0).abs() < 1e-9,
            "{label} total"
        );
    }
}
