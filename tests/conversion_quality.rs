//! §4.3 integration: converting sample-based tuple distributions to
//! parametric forms — the KL-optimal Gaussian, the AIC/BIC-selected
//! mixture, and the quality ordering between them on the paper's
//! motivating scenario (an object that may have moved shelves).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_streams::core::toperator::convert_samples;
use uncertain_streams::core::{ConversionPolicy, Updf};
use uncertain_streams::prob::dist::{Dist, GaussianMixture};
use uncertain_streams::prob::fit::ModelSelection;
use uncertain_streams::prob::metrics::cross_entropy_vs_dist;
use uncertain_streams::prob::samples::WeightedSamples;

fn bimodal_cloud(sep: f64, n: usize, seed: u64) -> WeightedSamples {
    let truth = GaussianMixture::from_triples(&[(0.6, 0.0, 0.8), (0.4, sep, 0.8)]);
    let mut rng = StdRng::seed_from_u64(seed);
    WeightedSamples::unweighted((0..n).map(|_| truth.sample(&mut rng)).collect())
}

#[test]
fn mixture_policy_beats_gaussian_on_moved_object() {
    // "An object may have recently moved … Approximating these samples
    // using a single Gaussian is obviously inaccurate" (§4.3).
    let cloud = bimodal_cloud(12.0, 800, 1);
    let gauss = convert_samples(cloud.clone(), &ConversionPolicy::FitGaussian);
    let mix = convert_samples(
        cloud.clone(),
        &ConversionPolicy::FitMixture {
            max_k: 3,
            criterion: ModelSelection::Bic,
        },
    );
    let Updf::Parametric(g) = &gauss else {
        panic!()
    };
    let Updf::Parametric(m) = &mix else { panic!() };
    assert!(matches!(m, Dist::Mixture(_)), "BIC must pick a mixture");
    // KL(p̂‖q) comparison via cross-entropy: lower is closer to p̂.
    let ce_g = cross_entropy_vs_dist(&cloud, g);
    let ce_m = cross_entropy_vs_dist(&cloud, m);
    assert!(
        ce_m < ce_g - 0.1,
        "mixture CE {ce_m:.3} should beat Gaussian CE {ce_g:.3}"
    );
}

#[test]
fn unimodal_cloud_stays_gaussian_under_bic() {
    let truth = GaussianMixture::from_triples(&[(1.0, 3.0, 1.2)]);
    let mut rng = StdRng::seed_from_u64(2);
    let cloud = WeightedSamples::unweighted((0..600).map(|_| truth.sample(&mut rng)).collect());
    let out = convert_samples(
        cloud,
        &ConversionPolicy::FitMixture {
            max_k: 3,
            criterion: ModelSelection::Bic,
        },
    );
    let Updf::Parametric(d) = &out else { panic!() };
    assert!(
        matches!(d, Dist::Gaussian(_)),
        "BIC must not hallucinate modes: got {d:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Gaussian conversion preserves the first two moments exactly
    /// for any weighted cloud (the §4.3 closed form).
    #[test]
    fn gaussian_conversion_preserves_moments(
        seed in 0u64..1000,
        n in 10usize..200,
        scale in 0.1f64..50.0,
        shift in -100.0f64..100.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Dist::gaussian(shift, scale);
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let ws: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let cloud = WeightedSamples::new(xs, ws);
        let out = convert_samples(cloud.clone(), &ConversionPolicy::FitGaussian);
        prop_assert!((out.mean() - cloud.mean()).abs() <= 1e-9 * (1.0 + cloud.mean().abs()));
        prop_assert!((out.variance() - cloud.variance()).abs() <= 1e-9 * (1.0 + cloud.variance()));
    }

    /// Conversion never inflates the payload: parametric forms are at
    /// most a few components regardless of the cloud size.
    #[test]
    fn conversion_always_compacts(seed in 0u64..500, n in 50usize..400) {
        let cloud = bimodal_cloud(8.0, n, seed);
        let before = Updf::Samples(cloud.clone()).payload_bytes();
        let out = convert_samples(cloud, &ConversionPolicy::FitMixture {
            max_k: 3,
            criterion: ModelSelection::Bic,
        });
        prop_assert!(!out.is_sample_based());
        prop_assert!(out.payload_bytes() * 4 < before);
    }
}
