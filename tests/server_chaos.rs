//! Fault-injection suite for the serving stack: every test drives real
//! TCP connections through failures — seeded chaos proxies, scripted
//! torn frames, duplicated resumes, abandoned leases, slow subscribers
//! — and asserts the served output is *byte-identical* to
//! `QueryGraph::run_batched` over the same input (or that the declared
//! degradation is exactly the one configured).
//!
//! The matrix tests (`chaos_seed_*`) are the headline: three publishers
//! behind independent seeded [`ChaosProxy`]s suffer deterministic
//! delays, frame-boundary resets, and mid-frame cuts while a clean
//! subscriber watches. Exactly-once resume/replay means the chaos must
//! be *invisible* in the output: same tuples, same order, same floats,
//! same lineage, no duplicates, no holes.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::project::{Derivation, Project};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::{NodeId, QueryGraph};
use uncertain_streams::core::schema::{DataType, Field, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::protocol::{self, Request, Response};
use uncertain_streams::server::{
    ChaosProxy, Client, ClientConfig, ErrorCode, Fault, ServedQuery, Server, ServerConfig,
    ServerError, Severity, SubscriberPolicy,
};
use uncertain_streams::telemetry::{MetricSnapshot, MetricValue, TraceDetail};

const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Sum a counter family across label sets (optionally filtered to one
/// label pair) from a metrics snapshot.
fn counter_total(metrics: &[MetricSnapshot], family: &str, label: Option<(&str, &str)>) -> u64 {
    metrics
        .iter()
        .filter(|m| m.family == family)
        .filter(|m| match label {
            Some((k, v)) => m.labels.iter().any(|(lk, lv)| lk == k && lv == v),
            None => true,
        })
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            other => panic!("{family} must be a counter, got {other:?}"),
        })
        .sum()
}

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("g", DataType::Int)
        .field("tag", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

/// Unique-timestamp input (ts = index): the merged order is fully
/// determined, so byte-equality with the batched reference is exact.
fn inputs(n: usize) -> Vec<Tuple> {
    let s = schema();
    (0..n)
        .map(|i| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::Int((i % 4) as i64),
                    Value::Int((i % 17) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(
                        (i % 10) as f64,
                        1.0 + (i % 3) as f64 * 0.25,
                    ))),
                ],
                i as u64,
            )
        })
        .collect()
}

/// Q1-style pipeline: select(P(x > 2)) → project → tumbling SUM → sink.
fn q1_graph() -> (QueryGraph, NodeId) {
    let select =
        Select::new(Predicate::UncertainAbove("x".into(), 2.0), 0.05).without_conditioning();
    let project = Project::new(vec![
        Derivation::Certain {
            out: Field::new("weight", DataType::Float),
            f: Box::new(|t: &Tuple| Value::Float(t.int("tag").unwrap() as f64 * 2.5)),
        },
        Derivation::Linear {
            input: "x".into(),
            a: 0.5,
            b: 1.0,
            out: "y".into(),
        },
    ]);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(100),
        |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
        vec![AggSpec {
            field: "y".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy: Strategy::Clt,
        }],
    );
    let mut g = QueryGraph::new();
    let select = g.add(Box::new(select));
    let project = g.add(Box::new(project));
    let agg = g.add(Box::new(agg));
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.connect(select, project, 0).unwrap();
    g.connect(project, agg, 0).unwrap();
    g.connect(agg, sink, 0).unwrap();
    g.source("in", select);
    g.sink(sink);
    (g, sink)
}

/// Trivial marker pipeline (source → sink verbatim) for tests that care
/// about delivery mechanics rather than query semantics.
fn passthrough_graph() -> (QueryGraph, NodeId) {
    let mut g = QueryGraph::new();
    let sink = g.add(Box::new(Passthrough::new("sink")));
    g.source("in", sink);
    g.sink(sink);
    (g, sink)
}

fn marker_schema() -> Arc<Schema> {
    Schema::builder().field("m", DataType::Int).build()
}

fn markers(range: std::ops::Range<u64>) -> Vec<Tuple> {
    let s = marker_schema();
    range
        .map(|i| Tuple::new(s.clone(), vec![Value::Int(i as i64)], i))
        .collect()
}

/// Exact tuple fingerprint (timestamp, existence bits, lineage, full
/// `Debug` of every value — lossless for floats).
fn fingerprint(t: &Tuple) -> String {
    format!(
        "ts={} ex={:016x} lin={:?} vals={:?}",
        t.ts,
        t.existence.to_bits(),
        t.lineage.ids(),
        t.values()
    )
}

fn assert_streams_equal(got: &[Tuple], want: &[Tuple]) {
    assert_eq!(got.len(), want.len(), "tuple count mismatch");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(fingerprint(g), fingerprint(w));
    }
}

// --- raw-protocol helpers (for tests that need frame-level control) ---

fn raw_conn(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    s
}

fn raw_hello(stream: &mut TcpStream, publisher: bool) -> (u64, Option<u64>) {
    protocol::write_request(stream, &Request::Hello { publisher }).unwrap();
    match protocol::read_response(stream).unwrap() {
        Response::HelloAck { client_id, token } => (client_id, token),
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

fn raw_expect_ack(stream: &mut TcpStream) -> u32 {
    match protocol::read_response(stream).unwrap() {
        Response::Ack { count } => count,
        other => panic!("expected Ack, got {other:?}"),
    }
}

fn raw_publish(stream: &mut TcpStream, seq: u64, tuples: &[Tuple]) {
    protocol::write_publish(stream, "in", 0, Some(seq), tuples).unwrap();
    assert_eq!(raw_expect_ack(stream) as usize, tuples.len());
}

/// A client config tuned for tests: fast deterministic backoff, plenty
/// of retries (chaos can kill several consecutive connections).
fn chaotic_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        read_timeout: Some(READ_TIMEOUT),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(100),
        backoff_seed: Some(seed),
        max_retries: 20,
        ..ClientConfig::default()
    }
}

// --- the seeded chaos matrix -----------------------------------------

/// Three publishers behind independent seeded chaos proxies; the
/// subscriber connects directly. Whatever the proxies do — delay,
/// reset at a frame boundary, tear a frame in half — the streamed
/// output must be byte-identical to the batched reference, and every
/// scar the server records must be `Transient`.
fn run_seed_matrix(seed: u64) {
    let n = 900;
    let all = inputs(n);
    let (mut ref_graph, sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert!(!expected.is_empty(), "reference run must produce windows");

    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(q1_graph().0),
        ServerConfig {
            // Resumes land within milliseconds; a generous lease keeps
            // this test about replay, not expiry (expiry has its own).
            lease: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let proxies: Vec<ChaosProxy> = (0..3)
        .map(|p| ChaosProxy::seeded(addr, seed.wrapping_mul(1009).wrapping_add(p)).unwrap())
        .collect();

    let threads: Vec<_> = proxies
        .iter()
        .enumerate()
        .map(|(p, proxy)| {
            let slice: Vec<Tuple> = all.iter().skip(p).step_by(3).cloned().collect();
            let paddr = proxy.addr();
            let config = chaotic_client_config(seed.wrapping_add(p as u64));
            std::thread::spawn(move || {
                let mut client = Client::publisher_manual_with(paddr, config).unwrap();
                for chunk in slice.chunks(37) {
                    let accepted = client.publish("in", 0, chunk).unwrap();
                    assert_eq!(accepted, chunk.len());
                }
                client.finish().unwrap();
            })
        })
        .collect();

    let collected = subscriber.collect_until_eos().unwrap();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(collected.len(), 1, "one sink");
    assert_eq!(collected[0].0, sink.index());
    assert_streams_equal(&collected[0].1, &expected);

    // The always-on telemetry surface, fetched over the wire exactly as
    // an operator would: exactly-once must be visible in the counters,
    // not just in the output bytes.
    let (metrics, text) = subscriber.stats_v2().unwrap();
    assert_eq!(
        counter_total(&metrics, "server_publish_tuples_total", None),
        n as u64,
        "chaos must not duplicate or drop a single applied tuple"
    );
    assert_eq!(
        counter_total(&metrics, "engine_tuples_pushed_total", None),
        n as u64,
        "everything published must have reached the engine by EOS"
    );
    assert!(counter_total(&metrics, "server_eos_total", None) >= 1);
    let lag = metrics
        .iter()
        .find(|m| m.family == "engine_watermark_lag")
        .expect("the watermark-lag sketch is registered");
    match &lag.value {
        MetricValue::Sketch(s) => {
            assert!(s.count > 0, "serving must have sealed watermarks");
            assert!(
                s.p99 > 0.0 && s.max > 0.0,
                "lag quantiles are non-zero over a real event-time feed: {s:?}"
            );
        }
        other => panic!("engine_watermark_lag must be a sketch, got {other:?}"),
    }
    assert!(text.contains("# TYPE engine_watermark_lag summary"));
    assert!(text.contains("server_publish_tuples_total"));
    assert!(text.contains("server_subscriber_queue_depth"));

    for proxy in &proxies {
        proxy.shutdown();
    }
    let registry = handle.registry();
    let journal = handle.journal();
    let errors = handle.shutdown();
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "chaos must leave only transient scars, got {errors:?}"
    );

    // The severity-split error counters reconcile exactly with the scar
    // list the handle drained — every recorded error was counted once.
    let snap = registry.snapshot();
    assert_eq!(
        counter_total(
            &snap,
            "server_errors_total",
            Some(("severity", "transient"))
        ),
        errors.len() as u64,
    );
    assert_eq!(
        counter_total(&snap, "server_errors_total", Some(("severity", "fatal"))),
        0
    );

    // Lease ledger: counters, journal events, and scars agree. Every
    // chaos-forced park was resumed (the publishers all finished), and
    // nothing expired under the generous lease.
    let events = journal.all();
    let parked = events
        .iter()
        .filter(|e| matches!(e.detail, TraceDetail::LeaseParked { .. }))
        .count() as u64;
    let resumed = events
        .iter()
        .filter(|e| matches!(e.detail, TraceDetail::LeaseResumed { .. }))
        .count() as u64;
    assert_eq!(
        counter_total(&snap, "server_lease_parked_total", None),
        parked
    );
    assert_eq!(
        counter_total(&snap, "server_lease_resumed_total", None),
        resumed
    );
    assert_eq!(parked, resumed, "every park must have been resumed");
    assert_eq!(counter_total(&snap, "server_lease_expired_total", None), 0);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.detail, TraceDetail::LeaseExpired { .. })),
        "no lease expiry under a 30 s lease"
    );
    assert_eq!(
        counter_total(&snap, "server_gap_frames_total", None),
        0,
        "a clean subscriber never sees a gap"
    );
}

// The CI seed matrix: four fixed seeds, each a different deterministic
// storm of delays/resets/torn frames across the three publishers.
#[test]
fn chaos_seed_1() {
    run_seed_matrix(1);
}

#[test]
fn chaos_seed_2() {
    run_seed_matrix(2);
}

#[test]
fn chaos_seed_3() {
    run_seed_matrix(3);
}

#[test]
fn chaos_seed_4() {
    run_seed_matrix(4);
}

/// A seeded chaos storm over a *staged* sharded query: the serving path
/// runs pipelined exchange delivery by default, so the torn frames,
/// resets, and replays all land on the eager path — sealed windows
/// crossing the exchange ahead of the drain barrier while publishers
/// reconnect mid-stream. The output must still be exactly equal to
/// `run_batched` (compared sorted: a staged stream releases per
/// watermark interval), and the eager forward counter must prove the
/// pipelined path actually ran.
#[test]
fn chaos_storm_over_pipelined_staged_serving() {
    let n = 900;
    let all = inputs(n);
    let mk_graph = || {
        let mut g = QueryGraph::new();
        let agg = g.add(Box::new(WindowedAggregate::new(
            WindowKind::Tumbling(100),
            |t: &Tuple| GroupKey::from_value(t.get("g").unwrap()).unwrap(),
            vec![AggSpec {
                field: "x".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::ExactParametric,
            }],
        )));
        let reagg = g.add(Box::new(
            WindowedAggregate::new(
                WindowKind::Tumbling(400),
                |t: &Tuple| GroupKey::from_value(t.get("n_tuples").unwrap()).unwrap(),
                vec![AggSpec {
                    field: "total".into(),
                    func: AggFunc::Sum,
                    out: "grand".into(),
                    strategy: Strategy::ExactParametric,
                }],
            )
            .named("reagg"),
        ));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(agg, reagg, 0).unwrap();
        g.connect(reagg, sink, 0).unwrap();
        g.source("in", agg);
        g.sink(sink);
        g
    };
    let sink = NodeId::from_index(2);
    let mut ref_graph = mk_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert!(!expected.is_empty(), "staged reference produced windows");

    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::sharded(mk_graph, 4),
        ServerConfig {
            lease: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let proxies: Vec<ChaosProxy> = (0..3)
        .map(|p| ChaosProxy::seeded(addr, 0xEA6E_Fu64.wrapping_mul(1009).wrapping_add(p)).unwrap())
        .collect();
    let threads: Vec<_> = proxies
        .iter()
        .enumerate()
        .map(|(p, proxy)| {
            let slice: Vec<Tuple> = all.iter().skip(p).step_by(3).cloned().collect();
            let paddr = proxy.addr();
            let config = chaotic_client_config(0xEA6E_F + p as u64);
            std::thread::spawn(move || {
                let mut client = Client::publisher_manual_with(paddr, config).unwrap();
                for chunk in slice.chunks(37) {
                    let accepted = client.publish("in", 0, chunk).unwrap();
                    assert_eq!(accepted, chunk.len());
                }
                client.finish().unwrap();
            })
        })
        .collect();

    let collected = subscriber.collect_until_eos().unwrap();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(collected.len(), 1, "one sink");
    assert_eq!(collected[0].0, sink.index());
    let mut got: Vec<String> = collected[0].1.iter().map(fingerprint).collect();
    let mut want: Vec<String> = expected.iter().map(fingerprint).collect();
    got.sort();
    want.sort();
    assert_eq!(got, want, "chaos over the eager path must stay exact");

    // The wire-served counters prove pipelining actually engaged: the
    // exchange stage forwarded intervals ahead of its drain barrier.
    let (metrics, _) = subscriber.stats_v2().unwrap();
    assert!(
        counter_total(
            &metrics,
            "engine_exchange_eager_forwards_total",
            Some(("stage", "1"))
        ) > 0,
        "eager delivery must have run during the storm"
    );
    assert!(
        counter_total(
            &metrics,
            "engine_exchange_forwarded_tuples_total",
            Some(("stage", "1"))
        ) > 0,
        "window rows crossed the exchange"
    );

    for proxy in &proxies {
        proxy.shutdown();
    }
    let errors = handle.shutdown();
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "chaos must leave only transient scars, got {errors:?}"
    );
}

/// Randomized variant for soak runs: `cargo test -- --ignored` picks a
/// fresh seed each time (printed for reproduction via the fixed-seed
/// path above).
#[test]
#[ignore = "randomized chaos soak; run explicitly with -- --ignored"]
fn chaos_random_seed_soak() {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xC0FFEE);
    eprintln!("chaos soak seed: {seed} (rerun via run_seed_matrix({seed}))");
    run_seed_matrix(seed);
}

// --- scripted faults --------------------------------------------------

#[test]
fn torn_publish_frame_is_replayed_exactly_once() {
    // Connection 0 is cut in the middle of its second publish frame
    // (frame 0 = Hello, 1 = first publish, 2 = torn): the server sees a
    // half-written frame, the client never sees the ack. The resumed
    // connection must replay that exact batch — once.
    let (graph, sink) = passthrough_graph();
    let all = markers(0..50);
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(graph)).unwrap();
    let mut subscriber = Client::subscriber(handle.addr()).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let proxy = ChaosProxy::scripted(
        handle.addr(),
        vec![vec![Fault::CutMidFrame { frame: 2 }], vec![]],
    )
    .unwrap();
    let mut publisher =
        Client::publisher_manual_with(proxy.addr(), chaotic_client_config(7)).unwrap();
    for chunk in all.chunks(10) {
        assert_eq!(publisher.publish("in", 0, chunk).unwrap(), chunk.len());
    }
    publisher.finish().unwrap();

    let collected = subscriber.collect_until_eos().unwrap();
    let (mut ref_graph, _) = passthrough_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert_streams_equal(&collected[0].1, &expected);

    assert!(
        proxy.connections() >= 2,
        "the cut must have forced a reconnect"
    );
    proxy.shutdown();
    let registry = handle.registry();
    let errors = handle.shutdown();
    // The scripted cut parks the session exactly once, and the healed
    // resume pairs with it — visible in the lease counters.
    let snap = registry.snapshot();
    assert_eq!(
        counter_total(&snap, "server_lease_parked_total", None),
        1,
        "one mid-stream cut, one park"
    );
    assert_eq!(counter_total(&snap, "server_lease_resumed_total", None), 1);
    assert!(counter_total(&snap, "server_resumes_total", None) >= 1);
    assert_eq!(
        counter_total(&snap, "server_publish_tuples_total", None),
        50,
        "the torn batch replays once, never twice"
    );
    assert!(
        errors.iter().any(|e| matches!(
            e,
            ServerError::ClientDisconnected {
                role: "publisher",
                ..
            }
        )),
        "the cut connection must be recorded, got {errors:?}"
    );
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "a healed cut is transient, got {errors:?}"
    );
}

#[test]
fn duplicated_resume_usurps_without_duplicating_data() {
    // Two connections present the same session token; both get
    // `ResumeOk`, both replay the same sequence. The epoch mechanism
    // lets the newest own the session and the sequence dedup makes the
    // stale replay a harmless re-ack — the merge sees each batch once.
    let (graph, sink) = passthrough_graph();
    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(graph)).unwrap();
    let addr = handle.addr();
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let chunk1 = markers(0..20);
    let chunk2 = markers(20..40);

    let mut a = raw_conn(addr);
    let (_, token) = raw_hello(&mut a, true);
    let token = token.expect("publisher hello must return a session token");
    raw_publish(&mut a, 1, &chunk1);

    // Two rival resumes of the same session.
    let mut b = raw_conn(addr);
    protocol::write_request(
        &mut b,
        &Request::Resume {
            token,
            last_acked_seq: 1,
        },
    )
    .unwrap();
    match protocol::read_response(&mut b).unwrap() {
        Response::ResumeOk { last_seq, .. } => assert_eq!(last_seq, 1),
        other => panic!("expected ResumeOk, got {other:?}"),
    }
    let mut c = raw_conn(addr);
    protocol::write_request(
        &mut c,
        &Request::Resume {
            token,
            last_acked_seq: 1,
        },
    )
    .unwrap();
    match protocol::read_response(&mut c).unwrap() {
        Response::ResumeOk { last_seq, .. } => assert_eq!(last_seq, 1),
        other => panic!("expected ResumeOk, got {other:?}"),
    }

    // Both replay sequence 2. The first applies; the second must be
    // re-acked, not re-applied.
    raw_publish(&mut b, 2, &chunk2);
    raw_publish(&mut c, 2, &chunk2);

    protocol::write_request(&mut c, &Request::Finish).unwrap();
    raw_expect_ack(&mut c);

    let collected = subscriber.collect_until_eos().unwrap();
    let (mut ref_graph, _) = passthrough_graph();
    let mut all = chunk1;
    all.extend(chunk2);
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert_streams_equal(&collected[0].1, &expected);

    drop(a);
    drop(b);
    let errors = handle.shutdown();
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "usurped connections are transient noise, got {errors:?}"
    );
}

// --- lease lifecycle --------------------------------------------------

#[test]
fn lease_expiry_without_resume_escalates_and_still_reaches_eos() {
    // A publisher vanishes and never resumes: its disconnect is
    // Transient (the lease may yet be resumed), the expiry that follows
    // is Fatal (its slot degraded to finished — data may be missing),
    // and the query still drains to a clean EOS for everyone else.
    let all = inputs(600);
    let (mut ref_graph, sink) = q1_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();

    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(q1_graph().0),
        ServerConfig {
            lease: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut steady = Client::publisher_manual(addr).unwrap();
    steady.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut flaky = Client::publisher_manual(addr).unwrap();
    flaky.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    flaky.publish("in", 0, &all[0..100]).unwrap();
    drop(flaky); // vanish mid-stream; the lease runs out unresumed

    steady.publish("in", 0, &all[100..600]).unwrap();
    steady.finish().unwrap();

    // EOS still arrives (the expired slot degrades to finished instead
    // of wedging the merge), and — since every published batch was
    // acked before the vanish — the output is still byte-exact.
    let collected = subscriber.collect_until_eos().unwrap();
    assert_streams_equal(&collected[0].1, &expected);
    assert!(handle.is_finished());

    let registry = handle.registry();
    let journal = handle.journal();
    let errors = handle.shutdown();
    let disconnect = errors.iter().find(|e| {
        matches!(
            e,
            ServerError::ClientDisconnected {
                role: "publisher",
                ..
            }
        )
    });
    let expiry = errors
        .iter()
        .find(|e| matches!(e, ServerError::LeaseExpired { .. }));
    assert_eq!(
        disconnect.map(|e| e.severity()),
        Some(Severity::Transient),
        "disconnect is transient while the lease runs: {errors:?}"
    );
    assert_eq!(
        expiry.map(|e| e.severity()),
        Some(Severity::Fatal),
        "unresumed expiry must escalate to fatal: {errors:?}"
    );

    // The expiry is visible in the counters and the journal, and the
    // severity split reconciles exactly with the scar list.
    let snap = registry.snapshot();
    let expired_scars = errors
        .iter()
        .filter(|e| matches!(e, ServerError::LeaseExpired { .. }))
        .count() as u64;
    assert_eq!(
        counter_total(&snap, "server_lease_expired_total", None),
        expired_scars
    );
    assert_eq!(counter_total(&snap, "server_lease_parked_total", None), 1);
    assert_eq!(counter_total(&snap, "server_lease_resumed_total", None), 0);
    assert_eq!(
        counter_total(&snap, "server_errors_total", Some(("severity", "fatal"))),
        errors
            .iter()
            .filter(|e| e.severity() == Severity::Fatal)
            .count() as u64
    );
    assert_eq!(
        counter_total(
            &snap,
            "server_errors_total",
            Some(("severity", "transient"))
        ),
        errors
            .iter()
            .filter(|e| e.severity() == Severity::Transient)
            .count() as u64
    );
    let events = journal.all();
    assert!(events
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::LeaseParked { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.detail, TraceDetail::LeaseExpired { .. })));
}

#[test]
fn lease_expiry_after_eos_flush_is_inert() {
    // Regression (shutdown/lease-expiry race): once the query has
    // flushed, an abrupt publisher disconnect must not start a lease,
    // and no timer may fire a `LeaseExpired` that re-opens the merge
    // gate or pollutes the error log.
    let (graph, sink) = passthrough_graph();
    let all = markers(0..80);
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(graph),
        ServerConfig {
            lease: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let mut subscriber = Client::subscriber(addr).unwrap();
    subscriber.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    let mut publisher = Client::publisher_manual(addr).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    publisher.publish("in", 0, &all).unwrap();
    publisher.finish().unwrap();
    drop(publisher); // clean disconnect after Finish: no lease

    let collected = subscriber.collect_until_eos().unwrap();
    for _ in 0..200 {
        if handle.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.is_finished());

    // A *post-EOS* publisher that publishes (rejected) and vanishes:
    // the park must see the flushed query and skip the lease entirely.
    let mut late = raw_conn(addr);
    raw_hello(&mut late, true);
    protocol::write_publish(&mut late, "in", 0, Some(1), &markers(0..1)).unwrap();
    match protocol::read_response(&mut late).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Finished),
        other => panic!("expected Finished error after EOS, got {other:?}"),
    }
    drop(late);

    // Sleep past the lease: if any timer was (wrongly) armed, it fires
    // inside this window and the assertions below catch it.
    std::thread::sleep(Duration::from_millis(350));
    assert!(handle.is_finished(), "the merge gate must stay closed");

    let (mut ref_graph, _) = passthrough_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert_streams_equal(&collected[0].1, &expected);

    let errors = handle.shutdown();
    assert!(
        !errors
            .iter()
            .any(|e| matches!(e, ServerError::LeaseExpired { .. })),
        "no lease may expire after the query flushed, got {errors:?}"
    );
}

#[test]
fn shutdown_with_parked_lease_returns_promptly() {
    // Regression (the other half of the race): shutting the server down
    // while a session sits parked under a long lease must not wait for
    // the lease, and the orphaned timer must be inert when it fires.
    let (graph, _) = passthrough_graph();
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(graph),
        ServerConfig {
            lease: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = Client::publisher_manual(handle.addr()).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    publisher.publish("in", 0, &markers(0..10)).unwrap();
    drop(publisher); // park the session under the 10 s lease
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let errors = handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait out the lease"
    );
    assert!(
        !errors
            .iter()
            .any(|e| matches!(e, ServerError::LeaseExpired { .. })),
        "shutdown preempts expiry, got {errors:?}"
    );
}

// --- slow-subscriber degradation --------------------------------------

/// Flood a deliberately unread subscriber connection. Returns what the
/// raw subscriber saw once it finally reads: (frames, gap notices,
/// severed-with-Lagging flag, seq consistency verified).
fn flood_slow_subscriber(policy: SubscriberPolicy) -> (usize, u64, bool) {
    let (graph, _) = passthrough_graph();
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(graph),
        ServerConfig {
            subscriber_capacity: 1,
            subscriber_policy: policy,
            replay_frames: 0,
            batch_size: 512,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Raw subscriber that subscribes and then refuses to read: the
    // relay blocks on the socket, the queue (capacity 1) fills, and the
    // policy decides what happens next.
    let mut sub = raw_conn(addr);
    raw_hello(&mut sub, false);
    protocol::write_request(&mut sub, &Request::Subscribe { from: None }).unwrap();
    raw_expect_ack(&mut sub);

    let mut publisher = Client::publisher_manual(addr).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    // ~200 result frames of 1000 tuples each — far beyond what the
    // kernel socket buffers can absorb for the unread subscriber.
    for i in 0..200u64 {
        let chunk = markers(i * 1000..(i + 1) * 1000);
        publisher.publish("in", 0, &chunk).unwrap();
    }
    publisher.finish().unwrap();

    // Now drain the subscriber and audit the sequence ledger: every
    // received frame's sequence must match the running counter, with
    // gaps accounting for exactly the shed frames.
    let mut expect_seq = 0u64;
    let mut frames = 0usize;
    let mut missed_total = 0u64;
    let mut severed = false;
    loop {
        match protocol::read_response(&mut sub).unwrap() {
            Response::Results { seq, .. } => {
                let seq = seq.expect("served results are sequenced");
                assert_eq!(seq, expect_seq, "no reordering, no duplicates");
                expect_seq += 1;
                frames += 1;
            }
            Response::Gap { missed } => {
                assert!(missed > 0);
                expect_seq += missed;
                missed_total += missed;
            }
            Response::Eos => break,
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Lagging);
                severed = true;
                break;
            }
            other => panic!("unexpected frame for slow subscriber: {other:?}"),
        }
    }

    let registry = handle.registry();
    let journal = handle.journal();
    let errors = handle.shutdown();
    match policy {
        SubscriberPolicy::DropOldest => {
            assert!(
                errors
                    .iter()
                    .any(|e| matches!(e, ServerError::SubscriberLagged { .. })),
                "shed frames must be recorded, got {errors:?}"
            );
            // The gap ledger closes three ways at once: the frames the
            // subscriber was told it missed, the frames the scars say
            // were shed, and the gap counters — all the same number.
            let snap = registry.snapshot();
            let scarred: u64 = errors
                .iter()
                .filter_map(|e| match e {
                    ServerError::SubscriberLagged { dropped, .. } => Some(*dropped),
                    _ => None,
                })
                .sum();
            assert_eq!(scarred, missed_total, "scars account for every shed frame");
            assert_eq!(
                counter_total(&snap, "server_gap_missed_total", None),
                missed_total
            );
            assert!(counter_total(&snap, "server_gap_frames_total", None) > 0);
            let journal_missed: u64 = journal
                .all()
                .iter()
                .filter_map(|e| match e.detail {
                    TraceDetail::GapEmitted { missed, .. } => Some(missed),
                    _ => None,
                })
                .sum();
            assert_eq!(journal_missed, missed_total);
        }
        SubscriberPolicy::Disconnect => assert!(
            errors
                .iter()
                .any(|e| matches!(e, ServerError::SubscriberDropped { .. })),
            "the severed subscriber must be recorded, got {errors:?}"
        ),
        SubscriberPolicy::Block => {}
    }
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "shedding is transient by design, got {errors:?}"
    );
    (frames, missed_total, severed)
}

#[test]
fn drop_oldest_policy_sheds_oldest_frames_and_reports_gaps() {
    let (frames, missed, severed) = flood_slow_subscriber(SubscriberPolicy::DropOldest);
    assert!(!severed, "DropOldest keeps the subscriber connected");
    assert!(missed > 0, "the flood must overflow capacity 1");
    assert!(frames > 0, "some frames still get through");
}

#[test]
fn disconnect_policy_severs_lagging_subscriber_with_typed_error() {
    let (_, _, severed) = flood_slow_subscriber(SubscriberPolicy::Disconnect);
    assert!(severed, "Disconnect must end with a typed Lagging error");
}

// --- subscriber resume over the replay ring ---------------------------

/// Publish `chunk` and then read `sub` until its cumulative tuple count
/// reaches `upto` — forcing the engine to have broadcast (and ringed)
/// every frame for the chunk before the test proceeds. Returns the
/// frames' sequences in arrival order.
fn publish_and_drain(
    publisher: &mut Client,
    sub: &mut TcpStream,
    chunk: &[Tuple],
    tuples_seen: &mut usize,
    upto: usize,
) -> Vec<u64> {
    publisher.publish("in", 0, chunk).unwrap();
    let mut seqs = Vec::new();
    while *tuples_seen < upto {
        match protocol::read_response(sub).unwrap() {
            Response::Ack { .. } => {}
            Response::Results { seq, tuples, .. } => {
                seqs.push(seq.expect("served results are sequenced"));
                *tuples_seen += tuples.len();
            }
            other => panic!("unexpected frame while draining: {other:?}"),
        }
    }
    seqs
}

#[test]
fn reconnecting_subscriber_resumes_from_replay_ring() {
    // Read part of the stream, vanish mid-stream, reconnect with
    // `from:` the next expected sequence: the ring replays what the
    // dead connection missed, with no duplicates and no holes — the
    // concatenation across both connections is byte-equal to the
    // reference.
    let (graph, sink) = passthrough_graph();
    let all = markers(0..200);
    let chunks: Vec<&[Tuple]> = all.chunks(20).collect();
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(graph),
        ServerConfig {
            replay_frames: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut first = raw_conn(addr);
    raw_hello(&mut first, false);
    protocol::write_request(&mut first, &Request::Subscribe { from: None }).unwrap();

    let mut publisher = Client::publisher_manual(addr).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

    // First five chunks: read back lock-step, so every frame is
    // confirmed broadcast (and in the ring) as it happens.
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut seen = 0usize;
    let mut next_from = 0u64;
    for (i, chunk) in chunks[..5].iter().enumerate() {
        let mut collected_here = 0;
        publisher.publish("in", 0, chunk).unwrap();
        while seen < (i + 1) * 20 {
            match protocol::read_response(&mut first).unwrap() {
                Response::Ack { .. } => {}
                Response::Results { seq, tuples: t, .. } => {
                    let seq = seq.expect("served results are sequenced");
                    assert_eq!(seq, next_from, "live stream is densely sequenced");
                    next_from = seq + 1;
                    seen += t.len();
                    collected_here += t.len();
                    tuples.extend(t);
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        assert_eq!(collected_here, 20);
    }
    drop(first); // abrupt, mid-stream

    // Keep publishing into the subscriber-less window: these frames go
    // to the ring only.
    for chunk in &chunks[5..] {
        publisher.publish("in", 0, chunk).unwrap();
    }
    publisher.finish().unwrap();
    for _ in 0..200 {
        if handle.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.is_finished());

    // Second connection resumes exactly where the first left off; the
    // ring (64 ≫ frame count) must cover the whole hole.
    let mut second = raw_conn(addr);
    raw_hello(&mut second, false);
    protocol::write_request(
        &mut second,
        &Request::Subscribe {
            from: Some(next_from),
        },
    )
    .unwrap();
    loop {
        match protocol::read_response(&mut second).unwrap() {
            Response::Ack { .. } => {}
            Response::Results { seq, tuples: t, .. } => {
                let seq = seq.expect("served results are sequenced");
                assert_eq!(seq, next_from, "replay must not duplicate or skip");
                next_from = seq + 1;
                tuples.extend(t);
            }
            Response::Gap { missed } => {
                panic!("ring of 64 holds this whole stream; spurious gap of {missed}")
            }
            Response::Eos => break,
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    let (mut ref_graph, _) = passthrough_graph();
    let expected = ref_graph
        .run_batched(vec![("in".into(), 0, all)], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();
    assert_streams_equal(&tuples, &expected);
    handle.shutdown();
}

#[test]
fn stale_subscriber_resume_gets_gap_for_evicted_frames() {
    // Subscribe from sequence 0 against a 2-frame ring after several
    // frames have been broadcast: the evicted prefix surfaces as one
    // honest Gap, then the retained tail replays in order — the ledger
    // (gap + replayed sequences) accounts for every frame ever sent.
    let (graph, _) = passthrough_graph();
    let all = markers(0..200);
    let chunks: Vec<&[Tuple]> = all.chunks(20).collect();
    let handle = Server::serve_with(
        "127.0.0.1:0",
        ServedQuery::new(graph),
        ServerConfig {
            replay_frames: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A live subscriber reads the first five chunks lock-step, proving
    // at least five frames were broadcast (the ring keeps only 2).
    let mut live = raw_conn(addr);
    raw_hello(&mut live, false);
    protocol::write_request(&mut live, &Request::Subscribe { from: None }).unwrap();
    let mut publisher = Client::publisher_manual(addr).unwrap();
    publisher.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut seen = 0usize;
    let mut frames_broadcast = 0u64;
    for (i, chunk) in chunks[..5].iter().enumerate() {
        let seqs = publish_and_drain(&mut publisher, &mut live, chunk, &mut seen, (i + 1) * 20);
        frames_broadcast += seqs.len() as u64;
    }
    assert!(frames_broadcast >= 5);

    // The stale resume: from sequence 0, long since evicted.
    let mut stale = raw_conn(addr);
    raw_hello(&mut stale, false);
    protocol::write_request(&mut stale, &Request::Subscribe { from: Some(0) }).unwrap();
    let mut gap_missed = None;
    let mut replayed = Vec::new();
    // Read exactly the gap + the two ring frames (everything available
    // before new publishes).
    while replayed.len() < 2 {
        match protocol::read_response(&mut stale).unwrap() {
            Response::Ack { .. } => {}
            Response::Gap { missed } => {
                assert!(gap_missed.is_none(), "exactly one gap notice");
                assert!(replayed.is_empty(), "the gap precedes the replay");
                gap_missed = Some(missed);
            }
            Response::Results { seq, .. } => {
                replayed.push(seq.expect("served results are sequenced"));
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    let missed = gap_missed.expect("the evicted prefix must be declared");
    assert_eq!(
        missed,
        frames_broadcast - 2,
        "the gap declares exactly the evicted frames"
    );
    assert_eq!(replayed, vec![missed, missed + 1]);

    publisher.finish().unwrap();
    handle.shutdown();
}
